"""Unit tests for the brute-force baseline."""

import math

import pytest

from repro.core import ReductionRule, brute_force_operation_bound, brute_force_optimal
from repro.functions import achilles_good_size, achilles_heel, parity
from repro.truth_table import TruthTable, count_subfunctions


class TestSearch:
    def test_evaluates_all_orderings(self):
        result = brute_force_optimal(TruthTable.random(4, seed=1))
        assert result.orderings_evaluated == math.factorial(4)

    def test_best_order_achieves_mincost(self):
        tt = TruthTable.random(4, seed=2)
        result = brute_force_optimal(tt)
        assert sum(count_subfunctions(tt, list(result.order))) == result.mincost

    def test_all_optimal_have_equal_cost(self):
        tt = TruthTable.random(4, seed=3)
        result = brute_force_optimal(tt)
        for order in result.all_optimal:
            assert sum(count_subfunctions(tt, list(order))) == result.mincost

    def test_collect_all_flag(self):
        tt = parity(3)  # symmetric: every ordering optimal
        with_all = brute_force_optimal(tt, collect_all=True)
        without = brute_force_optimal(tt, collect_all=False)
        assert len(with_all.all_optimal) == 6
        assert len(without.all_optimal) == 1
        assert with_all.mincost == without.mincost

    def test_achilles(self):
        result = brute_force_optimal(achilles_heel(2))
        assert result.size == achilles_good_size(2)

    def test_size_property(self):
        result = brute_force_optimal(TruthTable.random(3, seed=4))
        assert result.size == result.mincost + 2

    def test_zdd_rule(self):
        tt = TruthTable.random(3, seed=5)
        result = brute_force_optimal(tt, rule=ReductionRule.ZDD)
        from repro.bdd import ZDD

        z = ZDD(3, list(result.order))
        assert z.size(z.from_truth_table(tt), include_terminals=False) == result.mincost

    def test_counters_accumulate(self):
        result = brute_force_optimal(TruthTable.random(3, seed=6))
        # 3! chains of (4 + 2 + 1) cells each
        assert result.counters.table_cells == 6 * 7


class TestBound:
    def test_operation_bound(self):
        assert brute_force_operation_bound(4) == 24 * 16

    def test_bound_dominates_measured(self):
        n = 4
        result = brute_force_optimal(TruthTable.random(n, seed=7))
        assert result.counters.table_cells <= brute_force_operation_bound(n)
