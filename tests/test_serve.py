"""Daemon tests: one warm pool + one shared cache serving many clients.

The contract under test (ISSUE acceptance criteria): the daemon survives
16 concurrent mixed requests with every answer bit-identical to a direct
``repro.solve()`` call; duplicate-fingerprint requests trigger exactly
one kernel sweep (counter-verified through ``/metrics``); a full queue
rejects with 429 instead of buffering without bound; and SIGTERM during
load drains — in-flight requests finish bit-identically and the process
exits 0.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import parse, solve
from repro.errors import ServeError
from repro.serve import (
    OrderingServer,
    ServeClient,
    ServeConfig,
    running_server,
)
from repro.truth_table import TruthTable


def _config(**overrides):
    """A fast test-sized server: thread backend, small pool."""
    defaults = dict(
        backend="thread", jobs=2, max_inflight=2, queue_limit=16
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _values_payload(table):
    return {
        "values": "".join(str(int(v)) for v in table.values),
        "n": table.n,
    }


class TestProtocol:
    def test_ping_solve_metrics_roundtrip(self):
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                assert client.ping()
                result = client.solve(expr="x0 & x1 | x2", method="fs")
                direct = solve(parse("x0 & x1 | x2"))
                assert tuple(result["order"]) == direct.order
                assert result["mincost"] == direct.mincost
                assert result["size"] == direct.size
                assert result["exact"] is True
                metrics = client.metrics()
                assert metrics["server"]["completed"] == 1

    def test_values_payload_and_rules(self):
        table = TruthTable.random(5, seed=7)
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                for rule in ("bdd", "zdd"):
                    result = client.solve(
                        method="fs", rule=rule, **_values_payload(table)
                    )
                    direct = solve(table, rule=_rule(rule))
                    assert tuple(result["order"]) == direct.order
                    assert result["mincost"] == direct.mincost

    def test_every_servable_method(self):
        table = TruthTable.random(5, seed=8)
        other = TruthTable.random(5, seed=9)
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                fs = client.solve(method="fs", **_values_payload(table))
                assert fs["mincost"] == solve(table).mincost

                shared = client.solve(
                    method="shared",
                    tables=[_values_payload(table), _values_payload(other)],
                )
                assert shared["mincost"] == solve(
                    [table, other], method="shared"
                ).mincost

                constrained = client.solve(
                    method="constrained",
                    precedence=[[0, 4]],
                    **_values_payload(table),
                )
                assert constrained["mincost"] == solve(
                    table, method="constrained", precedence=[(0, 4)]
                ).mincost
                assert constrained["order"].index(0) < (
                    constrained["order"].index(4)
                )

                window = client.solve(
                    method="window", width=3, **_values_payload(table)
                )
                assert window["exact"] is False
                assert window["mincost"] == solve(
                    table, method="window", width=3
                ).mincost

    def test_cache_hit_on_second_request(self):
        table = TruthTable.random(5, seed=10)
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                first = client.solve(method="fs", **_values_payload(table))
                second = client.solve(method="fs", **_values_payload(table))
                assert first["from_cache"] is False
                assert second["from_cache"] is True
                assert second["order"] == first["order"]
                metrics = client.metrics()
                assert metrics["server"]["kernel_sweeps"] == 1
                assert metrics["server"]["cache_hit_solves"] == 1
                assert metrics["cache"]["hits"] >= 1

    def test_unix_socket_transport(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        with running_server(_config(unix_socket=path)) as server:
            assert server.address == path
            with ServeClient(path) as client:
                assert client.ping()
        assert not os.path.exists(path)

    def test_pipelined_requests_on_one_connection(self):
        """Many requests in flight on one socket; ids route the answers."""
        tables = [TruthTable.random(4, seed=s) for s in range(20, 26)]
        with running_server(_config()) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=60) as sock:
                handle = sock.makefile("rwb")
                for index, table in enumerate(tables):
                    payload = {
                        "op": "solve", "id": index, "method": "fs",
                        **_values_payload(table),
                    }
                    handle.write(json.dumps(payload).encode() + b"\n")
                handle.flush()
                responses = [
                    json.loads(handle.readline()) for _ in tables
                ]
        by_id = {r["id"]: r for r in responses}
        assert sorted(by_id) == list(range(len(tables)))
        for index, table in enumerate(tables):
            assert by_id[index]["ok"], by_id[index]
            assert by_id[index]["result"]["mincost"] == solve(table).mincost


class TestRejection:
    def test_bad_json_is_400(self):
        with running_server(_config()) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=30) as sock:
                handle = sock.makefile("rwb")
                handle.write(b"this is not json\n")
                handle.flush()
                response = json.loads(handle.readline())
        assert response["ok"] is False
        assert response["status"] == 400

    def test_unknown_op_unknown_method_fs_star_all_400(self):
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                for payload in (
                    {"op": "frobnicate"},
                    {"op": "solve", "method": "nope", "expr": "x0"},
                    {"op": "solve", "method": "fs_star", "expr": "x0"},
                    {"op": "solve", "method": "fs"},  # no expr/values
                    {"op": "solve", "method": "shared", "expr": "x0"},
                ):
                    with pytest.raises(ServeError) as info:
                        client._checked(payload)
                    assert info.value.status == 400

    def test_budget_exhaustion_is_504(self):
        table = TruthTable.random(10, seed=11)
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                with pytest.raises(ServeError) as info:
                    client.solve(
                        method="fs", timeout=0.001, **_values_payload(table)
                    )
                assert info.value.status == 504

    def test_request_timeout_clamped_by_server_default(self):
        table = TruthTable.random(10, seed=12)
        with running_server(_config(default_timeout=0.001)) as server:
            with ServeClient(server.address) as client:
                with pytest.raises(ServeError) as info:
                    client.solve(
                        method="fs", timeout=3600, **_values_payload(table)
                    )
                assert info.value.status == 504

    def test_queue_full_is_429(self):
        """One busy worker, queue depth 1, a burst: someone gets 429."""
        slow = TruthTable.random(12, seed=13)
        quick = [TruthTable.random(4, seed=s) for s in range(30, 40)]
        config = _config(max_inflight=1, queue_limit=1)
        with running_server(config) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=120) as sock:
                handle = sock.makefile("rwb")
                payloads = [
                    {"op": "solve", "id": 0, "method": "fs",
                     **_values_payload(slow)}
                ] + [
                    {"op": "solve", "id": i + 1, "method": "fs",
                     **_values_payload(t)}
                    for i, t in enumerate(quick)
                ]
                for payload in payloads:
                    handle.write(json.dumps(payload).encode() + b"\n")
                handle.flush()
                responses = [
                    json.loads(handle.readline()) for _ in payloads
                ]
        statuses = sorted(r["status"] for r in responses)
        assert 429 in statuses
        assert 200 in statuses
        rejected = [r for r in responses if r["status"] == 429]
        served = [r for r in responses if r["status"] == 200]
        assert len(rejected) + len(served) == len(payloads)
        # The slow leader itself was admitted first and served.
        assert any(r["id"] == 0 and r["ok"] for r in responses)


class TestConcurrencyAcceptance:
    def test_16_concurrent_mixed_requests_bit_identical(self):
        """ISSUE acceptance: 16 concurrent clients, identical + distinct
        fingerprints; every answer matches direct solve() bit-identically
        and the duplicates cost exactly one kernel sweep."""
        dup_table = TruthTable.random(6, seed=50)
        distinct = [TruthTable.random(6, seed=60 + s) for s in range(8)]
        jobs = [("dup", dup_table)] * 8 + [
            ("distinct", t) for t in distinct
        ]
        direct = {
            id(t): solve(t) for _, t in jobs
        }
        config = _config(max_inflight=4, queue_limit=32)
        with running_server(config) as server:
            address = server.address
            results = [None] * len(jobs)
            errors = []

            def worker(index, table):
                try:
                    with ServeClient(address, timeout=300) as client:
                        results[index] = client.solve(
                            method="fs", **_values_payload(table)
                        )
                except Exception as exc:  # pragma: no cover
                    errors.append((index, exc))

            threads = [
                threading.Thread(target=worker, args=(i, t))
                for i, (_, t) in enumerate(jobs)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            with ServeClient(address) as client:
                metrics = client.metrics()

        for (kind, table), result in zip(jobs, results):
            expected = direct[id(table)]
            assert tuple(result["order"]) == expected.order, kind
            assert result["mincost"] == expected.mincost, kind
            assert result["size"] == expected.size, kind
        # 9 distinct fingerprints -> exactly 9 kernel sweeps; the 7
        # duplicate requests resolved by coalescing or cache hits.
        server_metrics = metrics["server"]
        assert server_metrics["kernel_sweeps"] == 9
        assert server_metrics["completed"] == 16
        assert (
            server_metrics["coalesced"] + server_metrics["cache_hit_solves"]
            >= 7
        )

    def test_metrics_document_shape(self):
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                client.solve(expr="x0 & x1")
                metrics = client.metrics()
        assert set(metrics) >= {
            "protocol", "server", "cache", "counters", "config"
        }
        assert set(metrics["server"]) >= {
            "received", "completed", "failed", "rejected_queue_full",
            "rejected_draining", "bad_requests", "coalesced",
            "kernel_sweeps", "cache_hit_solves", "queue_depth",
            "in_flight", "draining", "uptime_seconds",
        }
        assert set(metrics["cache"]) >= {
            "hits", "misses", "stores", "disk_hits", "evictions",
            "retries", "hit_rate",
        }
        assert metrics["server"]["draining"] is False
        assert metrics["config"]["backend"] == "thread"

    def test_shared_disk_cache_across_server_restarts(self, tmp_path):
        table = TruthTable.random(6, seed=70)
        cache_dir = str(tmp_path / "cache")
        os.makedirs(cache_dir)
        config = _config(cache_dir=cache_dir)
        with running_server(config) as server:
            with ServeClient(server.address) as client:
                first = client.solve(method="fs", **_values_payload(table))
        assert first["from_cache"] is False
        # A fresh daemon over the same directory serves it from disk.
        with running_server(_config(cache_dir=cache_dir)) as server:
            with ServeClient(server.address) as client:
                second = client.solve(method="fs", **_values_payload(table))
                metrics = client.metrics()
        assert second["from_cache"] is True
        assert second["order"] == first["order"]
        assert metrics["server"]["kernel_sweeps"] == 0


class TestSigtermDrain:
    """The daemon as a process: real signals, real exit codes."""

    def _spawn(self, *extra):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--backend", "thread", "--jobs", "2",
             "--max-inflight", "2", *extra],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        line = proc.stdout.readline()
        assert "listening on" in line, line
        address = line.split("listening on ", 1)[1].split()[0]
        host, port = address.rsplit(":", 1)
        return proc, (host, int(port))

    def test_sigterm_during_load_drains_and_exits_zero(self):
        slow = TruthTable.random(12, seed=80)
        expected = solve(slow)
        proc, address = self._spawn()
        try:
            sock = socket.create_connection(address, timeout=300)
            handle = sock.makefile("rwb")
            handle.write(json.dumps({
                "op": "solve", "id": 1, "method": "fs",
                **_values_payload(slow),
            }).encode() + b"\n")
            handle.flush()
            time.sleep(0.3)  # let the request reach the worker
            proc.send_signal(signal.SIGTERM)
            # The in-flight solve finishes bit-identically...
            response = json.loads(handle.readline())
            assert response["ok"], response
            assert tuple(response["result"]["order"]) == expected.order
            assert response["result"]["mincost"] == expected.mincost
            sock.close()
            # ...and the process exits cleanly.
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_requests_after_sigterm_get_503(self):
        slow = TruthTable.random(12, seed=81)
        proc, address = self._spawn()
        try:
            sock = socket.create_connection(address, timeout=300)
            handle = sock.makefile("rwb")
            handle.write(json.dumps({
                "op": "solve", "id": 1, "method": "fs",
                **_values_payload(slow),
            }).encode() + b"\n")
            handle.flush()
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.2)  # let the drain flag flip
            handle.write(json.dumps({
                "op": "solve", "id": 2, "method": "fs", "expr": "x0 & x1",
            }).encode() + b"\n")
            handle.flush()
            responses = [json.loads(handle.readline()) for _ in range(2)]
            by_id = {r["id"]: r for r in responses}
            assert by_id[1]["ok"], by_id[1]
            assert by_id[2]["status"] == 503
            sock.close()
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_idle_sigterm_exits_zero_immediately(self):
        proc, address = self._spawn()
        try:
            with ServeClient(address) as client:
                assert client.ping()
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            assert "drained" in proc.stdout.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestEmbedding:
    def test_server_rejects_bad_config(self):
        with pytest.raises(ValueError):
            OrderingServer(ServeConfig(max_inflight=0))
        with pytest.raises(ValueError):
            OrderingServer(ServeConfig(queue_limit=0))

    def test_metrics_snapshot_without_traffic(self):
        with running_server(_config()) as server:
            snapshot = server.metrics_snapshot()
        assert snapshot["server"]["received"] == 0
        assert snapshot["cache"]["hit_rate"] == 0.0


def _rule(name):
    from repro.core.spec import ReductionRule

    return ReductionRule(name)
