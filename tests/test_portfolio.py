"""Tests for the heuristic strategy portfolio (:mod:`repro.portfolio`)
and the ``solve(strategy=...)`` API redesign.

The contract under test: every registered strategy runs standalone or
raced; the portfolio winner (and the merged counters) is bit-identical
across ``jobs`` counts and backends; a starved member degrades to its
honestly-rescored best-so-far instead of failing the race; stochastic
members reproduce exactly from a seed; and the deprecated
``bdd.reorder`` / ``optimize_with_fallback`` spellings keep working —
warning — through shims.
"""

import warnings

import pytest

import repro
from repro import solve
from repro.analysis.counters import OperationCounters
from repro.core import run_fs
from repro.core.budget import (
    Budget,
    optimize_with_fallback,
    parse_ladder,
    run_ladder,
)
from repro.core.engine import EngineConfig
from repro.core.spec import ReductionRule
from repro.errors import BudgetExceeded, OrderingError
from repro.portfolio import (
    PortfolioResult,
    StrategyResult,
    available_strategies,
    get_strategy,
    register_strategy,
    run_portfolio,
    run_strategy,
    sift_search,
    window_permutation_search,
)
from repro.truth_table import TruthTable, obdd_size

TABLE = TruthTable.random(6, seed=21)


def fake_clock(step=0.5):
    """A monotonic clock advancing ``step`` seconds per reading."""
    ticks = [0.0]

    def clock():
        ticks[0] += step
        return ticks[0]

    return clock


class TestRegistry:
    def test_builtin_strategies_registered(self):
        names = available_strategies()
        assert names == tuple(sorted(names))
        for expected in ("sift", "sift_group", "sift_symmetric",
                         "sift_swap", "window3", "window4", "anneal",
                         "influence", "entropy"):
            assert expected in names

    def test_get_strategy_unknown_names_valid_ones(self):
        with pytest.raises(OrderingError, match="sift"):
            get_strategy("teleport")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_strategy("sift", description="dup")
            def dup(ctx):  # pragma: no cover - never runs
                raise AssertionError

    def test_custom_strategy_runs_through_solve(self):
        @register_strategy("natural_test", description="identity order")
        def natural(ctx):
            from repro.portfolio import _Outcome

            order = tuple(range(ctx.table.n))
            size = ctx.governed_size_fn()(ctx.table, list(order))
            return _Outcome(order, size, 1)

        try:
            sol = solve(TABLE, strategy="natural_test")
            assert sol.order == tuple(range(TABLE.n))
            assert sol.exact is False
            assert sol.strategy == "natural_test"
        finally:
            from repro import portfolio

            del portfolio._STRATEGIES["natural_test"]


class TestStrategyResults:
    def test_every_strategy_standalone(self):
        optimum = run_fs(TABLE).mincost + run_fs(TABLE).num_terminals
        for name in available_strategies():
            result = run_strategy(name, TABLE)
            assert isinstance(result, StrategyResult)
            assert result.status == "ok"
            assert result.exact is False
            assert sorted(result.order) == list(range(TABLE.n))
            # Honest size: the reported total matches an independent
            # evaluation of the returned ordering.
            assert result.size == obdd_size(TABLE, list(result.order))
            assert result.size >= optimum

    def test_sift_bit_identical_to_legacy_shim(self):
        new = sift_search(TABLE)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.bdd.reorder import sift as legacy_sift

            old = legacy_sift(TABLE)
        assert old.order == new.order
        assert old.size == new.size
        assert old.evaluations == new.evaluations
        assert old.trajectory == new.trajectory

    def test_anneal_seed_reproducible(self):
        a = run_strategy("anneal", TABLE, seed=5)
        b = run_strategy("anneal", TABLE, seed=5)
        assert a.order == b.order
        assert a.size == b.size
        assert a.evaluations == b.evaluations
        assert a.counters.snapshot() == b.counters.snapshot()

    def test_anneal_seed_changes_search(self):
        runs = {tuple(run_strategy("anneal", TABLE, seed=s).trajectory)
                for s in range(4)}
        assert len(runs) > 1  # different seeds explore differently


class TestDeterminismMatrix:
    def test_same_winner_across_jobs_and_backends(self):
        baseline = None
        for jobs, backend in [(1, "serial"), (4, "serial"),
                              (1, "thread"), (4, "thread")]:
            counters = OperationCounters()
            result = run_portfolio(
                TABLE, counters=counters, seed=3,
                config=EngineConfig(jobs=jobs, backend=backend),
            )
            key = (result.winner, result.order, result.size,
                   counters.snapshot())
            if baseline is None:
                baseline = key
            else:
                assert key == baseline, (jobs, backend)

    def test_solve_portfolio_deterministic(self):
        a = solve(TABLE, strategy="portfolio", jobs=1)
        b = solve(TABLE, strategy="portfolio", jobs=4)
        assert a.order == b.order
        assert a.rung == b.rung
        assert a.counters.snapshot() == b.counters.snapshot()

    def test_winner_is_min_size_then_name(self):
        result = run_portfolio(TABLE, seed=3)
        assert isinstance(result, PortfolioResult)
        best = min(result.results, key=lambda r: (r.size, r.name))
        assert result.winner == best.name
        assert result.order == best.order
        # Rows come back sorted by the same deterministic key.
        keys = [(r.size, r.name) for r in result.results]
        assert keys == sorted(keys)


class TestBudgets:
    def test_starved_member_returns_best_so_far(self):
        budget = Budget(deadline=1.0, clock=fake_clock(0.6))
        result = run_strategy("sift", TABLE, budget=budget)
        assert result.status == "budget_exceeded"
        assert result.budget_reason == "deadline"
        assert sorted(result.order) == list(range(TABLE.n))
        # The best-so-far is honestly rescored, not trusted.
        assert result.size == obdd_size(TABLE, list(result.order))

    def test_starved_portfolio_still_returns_winner(self):
        budget = Budget(deadline=1.0, clock=fake_clock(0.5))
        result = run_portfolio(TABLE, budget=budget, seed=3)
        assert sorted(result.order) == list(range(TABLE.n))
        assert result.size == obdd_size(TABLE, list(result.order))
        assert any(r.status == "budget_exceeded" for r in result.results)

    def test_cancellation_propagates(self):
        budget = Budget()
        budget.cancel.set()
        with pytest.raises(BudgetExceeded) as excinfo:
            run_strategy("sift", TABLE, budget=budget)
        assert excinfo.value.reason == "cancelled"
        with pytest.raises(BudgetExceeded):
            run_portfolio(TABLE, budget=budget)


class TestSolveStrategyAPI:
    def test_default_strategy_is_exact(self):
        sol = solve(TABLE)
        assert sol.strategy == "exact"
        assert sol.rung is None
        assert sol.exact is True

    def test_named_strategy_solution_shape(self):
        sol = solve(TABLE, strategy="sift")
        assert sol.method == "fs"
        assert sol.strategy == "sift"
        assert sol.rung == "sift"
        assert sol.exact is False
        assert sol.from_cache is False
        assert sol.size == obdd_size(TABLE, list(sol.order))
        wire = sol.to_wire()
        assert wire["strategy"] == "sift"
        assert wire["rung"] == "sift"
        assert wire["exact"] is False

    def test_portfolio_solution_shape(self):
        sol = solve(TABLE, strategy="portfolio", seed=3)
        assert sol.strategy == "portfolio"
        assert sol.rung == sol.result.winner
        assert sol.exact is False
        assert isinstance(sol.result, PortfolioResult)

    def test_fallback_strategy_subsumes_ladder(self):
        sol = solve(TABLE, strategy="fallback")
        assert sol.strategy == "fallback"
        assert sol.rung == "fs"
        assert sol.exact is True
        direct = run_fs(TABLE)
        assert sol.order == direct.order

    def test_fallback_rungs_accepts_strategy_names(self):
        sol = solve(TABLE, strategy="fallback",
                    fallback_rungs="entropy,sift")
        assert sol.rung == "entropy"
        assert sol.exact is False
        assert sol.size == obdd_size(TABLE, list(sol.order))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(OrderingError, match="teleport"):
            solve(TABLE, strategy="teleport")

    def test_strategy_kwarg_cross_validation(self):
        with pytest.raises(TypeError, match="strategies"):
            solve(TABLE, strategies=("sift",))
        with pytest.raises(TypeError, match="fallback_rungs"):
            solve(TABLE, fallback_rungs="fs,sift")
        with pytest.raises(TypeError, match="strategies"):
            solve(TABLE, strategy="sift", strategies=("sift",))
        with pytest.raises(TypeError, match="method"):
            solve(TABLE, strategy="portfolio", method="window")

    def test_strategy_rejects_exact_only_engine_kwargs(self):
        with pytest.raises(TypeError, match="fault_injector"):
            solve(TABLE, strategy="sift", fault_injector=object())

    def test_engine_config_strategy_field(self):
        assert EngineConfig().strategy == "exact"
        assert EngineConfig(strategy="portfolio").strategy == "portfolio"
        assert EngineConfig(strategy="anneal").strategy == "anneal"
        with pytest.raises(OrderingError):
            EngineConfig(strategy="bogus")


class TestLadderRegistry:
    def test_parse_ladder_accepts_strategy_names(self):
        assert parse_ladder("fs,entropy,anneal") == ("fs", "entropy",
                                                     "anneal")
        with pytest.raises(OrderingError, match="teleport"):
            parse_ladder("fs,teleport")

    def test_run_ladder_strategy_rung_degrades_with_seed(self):
        # First rung (a strategy) starves; its best-so-far seeds the
        # final rung exactly like the built-in rungs do.
        budget = Budget(deadline=1.0, clock=fake_clock(0.6))
        result = run_ladder(
            TABLE, budget=budget, ladder=("anneal", "entropy"),
        )
        assert result.rung == "entropy"
        assert [a.rung for a in result.attempts] == ["anneal", "entropy"]
        assert result.counters.extra.get("fallback_used") == 1

    def test_run_ladder_unknown_rung_rejected_up_front(self):
        with pytest.raises(ValueError, match="teleport"):
            run_ladder(TABLE, ladder=("fs", "teleport"))

    def test_fallback_rungs_alias(self):
        via_alias = run_ladder(TABLE, fallback_rungs="entropy")
        via_ladder = run_ladder(TABLE, ladder=("entropy",))
        assert via_alias.order == via_ladder.order
        assert via_alias.rung == via_ladder.rung == "entropy"


class TestDeprecationShims:
    def test_reorder_sift_warns_and_delegates(self):
        from repro.bdd import reorder

        with pytest.warns(DeprecationWarning, match="sift_search"):
            old = reorder.sift(TABLE)
        assert old.order == sift_search(TABLE).order

    def test_reorder_window_permute_warns_and_delegates(self):
        from repro.bdd import reorder

        with pytest.warns(DeprecationWarning,
                          match="window_permutation_search"):
            old = reorder.window_permute(TABLE, window=3)
        assert old.order == window_permutation_search(TABLE, window=3).order

    def test_optimize_with_fallback_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="run_ladder"):
            shimmed = optimize_with_fallback(TABLE)
        direct = run_ladder(TABLE)
        assert shimmed.order == direct.order
        assert shimmed.rung == direct.rung == "fs"
        assert shimmed.exact is True

    def test_swap_sift_matches_shared_driver(self):
        from repro.bdd.swap import ReorderingBDD

        table = TruthTable.random(5, seed=9)
        manager = ReorderingBDD(5)
        manager.from_truth_table(table)
        before = manager.size()
        order, size = manager.sift()
        assert sorted(order) == list(range(5))
        assert size == obdd_size(table, order)
        assert size <= before


class TestPackageSurface:
    def test_top_level_exports(self):
        for name in ("run_portfolio", "run_strategy",
                     "available_strategies", "register_strategy",
                     "PortfolioResult", "StrategyResult", "SearchResult",
                     "sift_search", "window_permutation_search"):
            assert hasattr(repro, name)

    def test_portfolio_vs_exact_sanity(self):
        exact = run_fs(TABLE)
        result = run_portfolio(TABLE, seed=3)
        assert result.size >= exact.mincost + exact.num_terminals
        assert result.exact is False
