"""Tests for the canonical result cache (:mod:`repro.core.cache`).

The acceptance bar: for a randomized corpus (plus permuted/complemented
variants) the cached and uncached paths agree bit-for-bit on
``(mincost, width profile)``, and a cold-then-warm pair of identical
optimize calls performs *zero* kernel invocations on the warm run
(asserted via :class:`~repro.analysis.counters.OperationCounters`).
"""

import json
import random

import pytest

from repro.analysis.counters import OperationCounters
from repro.core import (
    EngineConfig,
    ReductionRule,
    ResultCache,
    optimize_many,
    run_fs,
    run_fs_constrained,
    run_fs_shared,
    run_fs_star,
    table_key,
    window_sweep,
)
from repro.core.cache import (
    chain_result_maps,
    lookup_ordering,
    raw_table_key,
    state_key,
    store_ordering,
)
from repro.core.compaction import compact
from repro.core.fs import initial_state
from repro.core.reconstruct import reconstruct_minimum_diagram
from repro.core.shared import count_shared_subfunctions
from repro.errors import CacheError
from repro.observability import Profiler
from repro.truth_table import TruthTable, count_subfunctions


def random_table(rnd, n, num_values=2):
    return TruthTable(n, [rnd.randrange(num_values) for _ in range(1 << n)])


def entry_files(directory):
    """Every entry file under a cache directory, across both layouts:
    sharded (``<dir>/<shard>/cache_*.json``) and flat (PR-7 era)."""
    return sorted(
        list(directory.glob("*/cache_*.json"))
        + list(directory.glob("cache_*.json"))
    )


class TestFingerprints:
    def test_permutation_invariant(self):
        rnd = random.Random(0)
        for _ in range(20):
            n = rnd.randint(1, 6)
            tt = random_table(rnd, n)
            perm = list(range(n))
            rnd.shuffle(perm)
            key = table_key([tt], ReductionRule.BDD)
            key_perm = table_key([tt.permute(perm)], ReductionRule.BDD)
            assert key.fingerprint == key_perm.fingerprint

    def test_complement_invariant_for_bdd(self):
        tt = TruthTable.random(4, seed=1)
        comp = TruthTable(4, [1 - v for v in tt.values])
        assert (table_key([tt], ReductionRule.BDD).fingerprint
                == table_key([comp], ReductionRule.BDD).fingerprint)

    def test_complement_not_merged_for_zdd(self):
        # ZDD widths are not complement-invariant: x0 has 1 node, ~x0
        # (which is 1 when x0=0) has a different zero-suppressed shape.
        tt = TruthTable(2, [0, 1, 0, 1])
        comp = TruthTable(2, [1 - v for v in tt.values])
        assert (table_key([tt], ReductionRule.ZDD).fingerprint
                != table_key([comp], ReductionRule.ZDD).fingerprint)

    def test_support_reduction_merges_padded_tables(self):
        # f(x0, x1) = x0 & x1 embedded in 4 variables still matches the
        # 2-variable original: dead variables cost nothing under BDD.
        small = TruthTable.from_callable(2, lambda a, b: a & b)
        padded = TruthTable.from_callable(4, lambda a, b, c, d: a & b)
        assert (table_key([small], ReductionRule.BDD).fingerprint
                == table_key([padded], ReductionRule.BDD).fingerprint)
        # ...but not under ZDD, where dead variables are priced.
        assert (table_key([small], ReductionRule.ZDD).fingerprint
                != table_key([padded], ReductionRule.ZDD).fingerprint)

    def test_rules_never_collide(self):
        tt = TruthTable.random(4, seed=2)
        prints = {
            table_key([tt], rule).fingerprint
            for rule in (ReductionRule.BDD, ReductionRule.ZDD,
                         ReductionRule.CBDD)
        }
        assert len(prints) == 3

    def test_raw_key_distinguishes_extra(self):
        tt = TruthTable.random(3, seed=3)
        a = raw_table_key([tt], ReductionRule.BDD, "w", {"width": 2})
        b = raw_table_key([tt], ReductionRule.BDD, "w", {"width": 3})
        assert a != b


class TestCachedRunFs:
    @pytest.mark.parametrize("rule", [
        ReductionRule.BDD, ReductionRule.ZDD, ReductionRule.CBDD,
    ])
    def test_randomized_corpus_bit_identical(self, rule):
        rnd = random.Random(hash(rule.value) & 0xFFFF)
        cache = ResultCache()
        for _ in range(12):
            n = rnd.randint(1, 6)
            tt = random_table(rnd, n)
            reference = run_fs(tt, rule=rule)
            cached_cold = run_fs(tt, rule=rule, cache=cache)
            assert cached_cold.mincost == reference.mincost
            if not cached_cold.from_cache:
                # A true cold run is the uncached DP, bit for bit.  (A
                # small random table may land in the orbit of an earlier
                # trial and hit immediately — then only optimality holds.)
                assert cached_cold.order == reference.order
                warm = run_fs(tt, rule=rule, cache=cache)
                assert warm.from_cache
                assert warm.mincost == reference.mincost
                # A hit appends non-support variables at the bottom, so
                # only zero-width positions may move; the support levels'
                # widths are reproduced exactly.
                assert ([w for w in warm.width_profile() if w]
                        == [w for w in reference.width_profile() if w])
                assert sum(warm.width_profile()) == reference.mincost
            # permuted variant: same canonical entry, translated back
            perm = list(range(n))
            rnd.shuffle(perm)
            permuted = tt.permute(perm)
            hit = run_fs(permuted, rule=rule, cache=cache)
            assert hit.from_cache
            assert hit.mincost == run_fs(permuted, rule=rule).mincost
            assert sum(hit.width_profile()) == hit.mincost
            # the mapped-back ordering must actually achieve the cost
            state = initial_state(permuted, rule)
            for var in reversed(hit.order):
                state = compact(state, var, rule)
            assert state.mincost == hit.mincost

    def test_complemented_variant_hits(self):
        rnd = random.Random(7)
        cache = ResultCache()
        for _ in range(8):
            n = rnd.randint(1, 5)
            tt = random_table(rnd, n)
            run_fs(tt, cache=cache)
            comp = TruthTable(n, [1 - v for v in tt.values])
            hit = run_fs(comp, cache=cache)
            assert hit.from_cache
            assert hit.mincost == run_fs(comp).mincost
            widths = hit.width_profile()
            assert widths == count_subfunctions(comp, hit.order)

    def test_mtbdd_cached(self):
        rnd = random.Random(11)
        cache = ResultCache()
        tt = random_table(rnd, 4, num_values=3)
        cold = run_fs(tt, rule=ReductionRule.MTBDD, cache=cache)
        warm = run_fs(tt, rule=ReductionRule.MTBDD, cache=cache)
        assert warm.from_cache
        assert warm.mincost == cold.mincost
        assert warm.num_terminals == cold.num_terminals

    def test_warm_run_zero_kernel_invocations(self):
        cache = ResultCache()
        tt = TruthTable.random(5, seed=4)
        cold_counters = OperationCounters()
        run_fs(tt, counters=cold_counters, cache=cache)
        assert cold_counters.table_cells > 0
        warm_counters = OperationCounters()
        warm = run_fs(tt, counters=warm_counters, cache=cache)
        assert warm.from_cache
        assert warm_counters.table_cells == 0
        assert warm_counters.compactions == 0
        assert warm_counters.extra["cache_hits"] == 1

    def test_hit_result_reconstructs_diagram(self):
        cache = ResultCache()
        tt = TruthTable.random(4, seed=5)
        run_fs(tt, cache=cache)
        warm = run_fs(tt, cache=cache)
        diagram = reconstruct_minimum_diagram(tt, warm)
        assert diagram.to_truth_table() == tt
        assert diagram.mincost == warm.mincost

    def test_hit_blocks_full_enumeration(self):
        cache = ResultCache()
        tt = TruthTable.random(3, seed=6)
        run_fs(tt, cache=cache)
        warm = run_fs(tt, cache=cache)
        with pytest.raises(ValueError, match="cache"):
            warm.optimal_orderings()

    def test_kernel_independence(self):
        cache = ResultCache()
        tt = TruthTable.random(4, seed=8)
        cold = run_fs(tt, engine="python", cache=cache)
        warm = run_fs(tt, engine="numpy", cache=cache)
        assert warm.from_cache
        assert warm.mincost == cold.mincost

    def test_profiler_phases_and_stats(self):
        cache = ResultCache()
        tt = TruthTable.random(4, seed=9)
        profiler = Profiler()
        run_fs(tt, cache=cache, profiler=profiler)
        run_fs(tt, cache=cache, profiler=profiler)
        assert "canonicalize" in profiler.phases
        assert "cache_lookup" in profiler.phases
        assert "cache_store" in profiler.phases
        profiler.note_cache_stats(cache.stats.snapshot())
        emitted = profiler.to_dict()
        assert emitted["cache"]["hits"] == 1
        assert emitted["cache"]["misses"] == 1


class TestSharedAndConstrained:
    def test_shared_permuted_variant_hits(self):
        rnd = random.Random(13)
        cache = ResultCache()
        tables = [random_table(rnd, 4) for _ in range(3)]
        cold = run_fs_shared(tables, cache=cache)
        perm = [2, 0, 3, 1]
        permuted = [t.permute(perm) for t in tables]
        hit = run_fs_shared(permuted, cache=cache)
        assert hit.from_cache
        reference = run_fs_shared(permuted)
        assert hit.mincost == reference.mincost == cold.mincost
        widths = count_shared_subfunctions(permuted, hit.order)
        assert sum(widths) == hit.mincost

    def test_single_output_shared_matches_run_fs_entry(self):
        cache = ResultCache()
        tt = TruthTable.random(4, seed=14)
        run_fs(tt, cache=cache)
        hit = run_fs_shared([tt], cache=cache)
        assert hit.from_cache  # one-output shared IS the run_fs problem

    def test_constrained_warm_is_free_and_keyed_by_constraints(self):
        cache = ResultCache()
        tt = TruthTable.random(5, seed=15)
        precedence = [(0, 3), (1, 4)]
        cold = run_fs_constrained(tt, precedence, cache=cache)
        counters = OperationCounters()
        warm = run_fs_constrained(tt, precedence, counters=counters,
                                  cache=cache)
        assert warm.from_cache
        assert counters.table_cells == 0
        assert (warm.order, warm.mincost, warm.feasible_subsets) == (
            cold.order, cold.mincost, cold.feasible_subsets)
        other = run_fs_constrained(tt, [(3, 0)], cache=cache)
        assert not other.from_cache
        assert other.order != cold.order or other.mincost >= cold.mincost


class TestFsStarAndWindow:
    def test_fs_star_replay_bit_identical(self):
        cache = ResultCache()
        config = EngineConfig(cache=cache)
        tt = TruthTable.random(5, seed=16)
        base = initial_state(tt)
        j_mask = 0b10110
        cold = run_fs_star(base, j_mask, config=config)
        counters = OperationCounters()
        warm = run_fs_star(base, j_mask, counters=counters, config=config)
        assert warm.pi == cold.pi
        assert warm.mincost == cold.mincost
        assert (warm.table == cold.table).all()
        # replay is O(|J|) compactions, tallied as extra, not paper-facing
        assert counters.compactions == 0
        assert counters.extra["cache_replay_compactions"] == 3

    def test_window_sweep_warm_identical_and_free(self):
        cache = ResultCache()
        config = EngineConfig(cache=cache)
        tt = TruthTable.random(6, seed=17)
        cold = window_sweep(tt, width=3, config=config)
        counters = OperationCounters()
        warm = window_sweep(tt, width=3, counters=counters, config=config)
        assert warm.from_cache
        assert (warm.order, warm.size, warm.improved, warm.windows_solved) \
            == (cold.order, cold.size, cold.improved, cold.windows_solved)
        assert counters.compactions == 0
        reference = window_sweep(tt, width=3)
        assert cold.size == reference.size

    def test_window_sweep_key_depends_on_initial_order(self):
        cache = ResultCache()
        config = EngineConfig(cache=cache)
        tt = TruthTable.random(5, seed=18)
        window_sweep(tt, [0, 1, 2, 3, 4], width=3, config=config)
        other = window_sweep(tt, [4, 3, 2, 1, 0], width=3, config=config)
        assert not other.from_cache


class TestDiskStore:
    def test_cold_then_warm_across_instances(self, tmp_path):
        tt = TruthTable.random(5, seed=19)
        cold = run_fs(tt, cache=ResultCache(directory=str(tmp_path)))
        counters = OperationCounters()
        warm_cache = ResultCache(directory=str(tmp_path))
        warm = run_fs(tt, counters=counters, cache=warm_cache)
        assert warm.from_cache
        assert warm.order == cold.order
        assert counters.table_cells == 0
        assert warm_cache.stats.disk_hits == 1

    def test_entries_are_checked_json(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        tt = TruthTable.random(3, seed=20)
        run_fs(tt, cache=cache)
        (path,) = entry_files(tmp_path)
        document = json.loads(path.read_text())
        assert set(document) == {"format", "checksum", "payload"}
        assert document["payload"]["entry"]["kind"] == "ordering"

    def test_corrupt_entry_raises_cache_error(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        tt = TruthTable.random(3, seed=21)
        run_fs(tt, cache=cache)
        (path,) = entry_files(tmp_path)
        document = json.loads(path.read_text())
        document["payload"]["entry"]["mincost"] += 1
        path.write_text(json.dumps(document))
        with pytest.raises(CacheError, match="checksum"):
            run_fs(tt, cache=ResultCache(directory=str(tmp_path)))

    def test_truncated_entry_raises_cache_error(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        tt = TruthTable.random(3, seed=22)
        run_fs(tt, cache=cache)
        (path,) = entry_files(tmp_path)
        path.write_text(path.read_text()[:40])
        with pytest.raises(CacheError, match="JSON"):
            run_fs(tt, cache=ResultCache(directory=str(tmp_path)))

    def test_wrong_fingerprint_raises_cache_error(self, tmp_path):
        import os
        import pathlib

        cache = ResultCache(directory=str(tmp_path))
        tt = TruthTable.random(3, seed=23)
        run_fs(tt, cache=cache)
        (path,) = entry_files(tmp_path)
        key = table_key([tt], ReductionRule.BDD)
        # Plant the entry at the sharded path of an impostor fingerprint.
        other = pathlib.Path(cache.entry_path("0" * 64))
        other.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, other)
        # Force a lookup of the impostor fingerprint via a fresh cache.
        fresh = ResultCache(directory=str(tmp_path))
        assert fresh.lookup(key.fingerprint) is None  # original is gone
        with pytest.raises(CacheError, match="fingerprint"):
            fresh.lookup("0" * 64)

    def test_malformed_payload_raises_cache_error(self):
        cache = ResultCache()
        tt = TruthTable.random(3, seed=24)
        key = table_key([tt], ReductionRule.BDD)
        cache.store(key.fingerprint, {"kind": "ordering", "order": [0],
                                      "widths": [1], "mincost": 1})
        with pytest.raises(CacheError, match="malformed"):
            lookup_ordering(cache, key)


class TestLru:
    def test_eviction_order(self):
        cache = ResultCache(maxsize=2)
        cache.store("a", {"x": 1})
        cache.store("b", {"x": 2})
        assert cache.lookup("a") is not None  # refresh a
        cache.store("c", {"x": 3})  # evicts b
        assert cache.lookup("b") is None
        assert cache.lookup("a") is not None
        assert cache.lookup("c") is not None
        assert cache.stats.evictions == 1

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=0)


class TestHelpers:
    def test_chain_result_maps_consistency(self):
        order = [2, 0, 1]
        widths = [1, 2, 1]
        mincost_by_subset, best_last, level_cost = chain_result_maps(
            order, widths)
        assert mincost_by_subset[0b111] == 4
        assert best_last[0b111] == 2
        assert level_cost[(0b011, 2)] == 1
        assert mincost_by_subset[0] == 0

    def test_store_rejects_nonzero_dead_width(self):
        tt = TruthTable.from_callable(3, lambda a, b, c: a & b)  # c dead
        key = table_key([tt], ReductionRule.BDD)
        with pytest.raises(CacheError, match="non-support"):
            store_ordering(ResultCache(), key, [0, 1, 2], [1, 1, 7])

    def test_state_key_distinguishes_j(self):
        tt = TruthTable.random(4, seed=25)
        base = initial_state(tt)
        assert (state_key(base, 0b0011, ReductionRule.BDD)
                != state_key(base, 0b0110, ReductionRule.BDD))


class TestOptimizeMany:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_dedup_and_order(self, jobs):
        rnd = random.Random(26)
        base_tables = [random_table(rnd, 4) for _ in range(3)]
        batch = []
        for tt in base_tables:
            perm = list(range(4))
            rnd.shuffle(perm)
            batch += [tt, tt.permute(perm),
                      TruthTable(4, [1 - v for v in tt.values])]
        cache = ResultCache()
        outcome = optimize_many(batch, cache=cache, jobs=jobs)
        assert len(outcome.results) == len(batch)
        assert outcome.unique <= 3
        for tt, result in zip(batch, outcome.results):
            assert result.mincost == run_fs(tt).mincost
        assert outcome.stats["hits"] >= len(batch) - outcome.unique

    def test_duplicates_cost_zero_kernel_work(self):
        tt = TruthTable.random(5, seed=27)
        cache = ResultCache()
        outcome = optimize_many([tt, tt, tt], cache=cache)
        assert [r.from_cache for r in outcome.results] == [
            False, True, True]

    def test_empty_batch(self):
        outcome = optimize_many([])
        assert outcome.results == []
        assert outcome.unique == 0

    def test_jobs_validated(self):
        with pytest.raises(ValueError):
            optimize_many([TruthTable.random(2, seed=28)], jobs=0)


class TestCrossProcessDisk:
    """The disk store is shared state: eviction and stats must hold up
    when several processes (daemons, CLI runs) mutate one directory."""

    def test_filelock_excludes_threads_and_reenters_nothing(self, tmp_path):
        from repro.core.cache import FileLock

        lock = FileLock(str(tmp_path / ".lock"))
        order = []

        def worker(tag):
            with lock:
                order.append((tag, "in"))
                order.append((tag, "out"))

        import threading

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Critical sections never interleave: every "in" is immediately
        # followed by the same tag's "out".
        for i in range(0, len(order), 2):
            assert order[i][0] == order[i + 1][0]
            assert (order[i][1], order[i + 1][1]) == ("in", "out")

    def test_disk_eviction_caps_entries_oldest_first(self, tmp_path):
        import os
        import time

        cache = ResultCache(directory=str(tmp_path), max_disk_entries=3)
        tables = [TruthTable.random(4, seed=s) for s in range(6)]
        keys = []
        for tt in tables:
            key = table_key([tt], ReductionRule.BDD)
            keys.append(key.fingerprint)
            cache.store(key.fingerprint, {"seed": key.fingerprint})
            # mtime granularity: make "oldest" unambiguous.
            os.utime(cache.entry_path(key.fingerprint))
            time.sleep(0.01)
        on_disk = {path.name for path in entry_files(tmp_path)}
        assert len(on_disk) == 3
        # The three newest survive.
        survivors = {f"cache_{fp}.json" for fp in keys[-3:]}
        assert on_disk == survivors
        assert cache.stats.evictions >= 3

    def test_vanished_entry_is_a_miss_not_an_error(self, tmp_path):
        import os

        writer = ResultCache(directory=str(tmp_path))
        reader = ResultCache(directory=str(tmp_path))
        key = table_key([TruthTable.random(4, seed=91)], ReductionRule.BDD)
        writer.store(key.fingerprint, {"payload": 1})
        # A sibling process evicts the file between the reader's memory
        # miss and its disk read.
        os.unlink(reader.entry_path(key.fingerprint))
        assert reader.lookup(key.fingerprint) is None
        assert reader.stats.misses == 1

    def test_damaged_entry_still_raises(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        key = table_key([TruthTable.random(4, seed=92)], ReductionRule.BDD)
        cache.store(key.fingerprint, {"payload": 1})
        fresh = ResultCache(directory=str(tmp_path))
        path = fresh.entry_path(key.fingerprint)
        with open(path, "w") as handle:
            handle.write('{"truncated": ')
        with pytest.raises(CacheError):
            fresh.lookup(key.fingerprint)

    def test_two_process_stress(self, tmp_path):
        """N writer processes over one directory with a tight disk cap:
        no crashes, the cap holds, and every surviving entry is intact."""
        import os
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent("""
            import sys
            from repro.core.cache import ResultCache, table_key
            from repro.core.spec import ReductionRule
            from repro.truth_table import TruthTable

            directory, offset = sys.argv[1], int(sys.argv[2])
            cache = ResultCache(directory=directory, max_disk_entries=5)
            for seed in range(offset, offset + 12):
                tt = TruthTable.random(4, seed=seed)
                key = table_key([tt], ReductionRule.BDD)
                cache.store(key.fingerprint, {"seed": seed})
                cache.lookup(key.fingerprint)
            print("ok")
        """)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path), str(100 * i)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for i in range(3)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
            assert out.decode().strip() == "ok"
        survivors = entry_files(tmp_path)
        assert 1 <= len(survivors) <= 5
        # Whatever survived the melee is readable and intact.
        fresh = ResultCache(directory=str(tmp_path))
        for path in survivors:
            fingerprint = path.name[len("cache_"):-len(".json")]
            payload = fresh.lookup(fingerprint)
            assert payload is not None and "seed" in payload


class TestSharding:
    """Fingerprint-prefix disk sharding: layout, the flat-layout (PR-7
    era) compatibility path, and the no-cross-shard-contention claim."""

    def test_entries_land_in_fingerprint_prefix_shard(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), shards=16)
        fp_a = "00" + "a" * 62
        fp_b = "1f" + "b" * 62   # 0x1f % 16 == 0x0f
        cache.store(fp_a, {"x": 1})
        cache.store(fp_b, {"x": 2})
        assert (tmp_path / "00" / f"cache_{fp_a}.json").exists()
        assert (tmp_path / "0f" / f"cache_{fp_b}.json").exists()
        # Each written shard has its own lockfile; the root has none.
        assert (tmp_path / "00" / ".cache.lock").exists()
        assert (tmp_path / "0f" / ".cache.lock").exists()
        assert not (tmp_path / ".cache.lock").exists()

    def test_shard_count_validated(self):
        with pytest.raises(ValueError, match="shards"):
            ResultCache(shards=0)
        with pytest.raises(ValueError, match="shards"):
            ResultCache(shards=257)

    def test_flat_layout_served_before_any_migration(self, tmp_path):
        """A PR-7-era directory (flat cache_*.json) serves hits through
        a sharded cache with zero writes — reads never reorganize."""
        flat_writer = ResultCache(directory=str(tmp_path), shards=1)
        tt = TruthTable.random(4, seed=40)
        key = table_key([tt], ReductionRule.BDD)
        flat_writer.store(key.fingerprint, {"seed": 40})
        # Recreate the historical flat layout byte-for-byte.
        import os

        for path in entry_files(tmp_path):
            os.replace(path, tmp_path / path.name)
        for shard_dir in [p for p in tmp_path.iterdir() if p.is_dir()]:
            for leftover in shard_dir.iterdir():
                leftover.unlink()
            shard_dir.rmdir()
        assert list(tmp_path.glob("cache_*.json"))

        reader = ResultCache(directory=str(tmp_path), shards=16)
        assert reader.lookup(key.fingerprint) == {"seed": 40}
        assert reader.stats.disk_hits == 1
        # Pure reads leave the flat layout untouched.
        assert list(tmp_path.glob("cache_*.json"))
        assert not list(tmp_path.glob("*/cache_*.json"))

    def test_flat_to_sharded_migration_round_trip(self, tmp_path):
        """First write migrates a flat directory into shards; every
        migrated entry is bit-identical and still readable."""
        import os

        tables = [TruthTable.random(4, seed=s) for s in range(50, 56)]
        flat_writer = ResultCache(directory=str(tmp_path), shards=1)
        fingerprints = []
        for index, tt in enumerate(tables):
            key = table_key([tt], ReductionRule.BDD)
            fingerprints.append(key.fingerprint)
            flat_writer.store(key.fingerprint, {"seed": index})
        for path in entry_files(tmp_path):
            os.replace(path, tmp_path / path.name)
        before = {
            path.name: path.read_bytes()
            for path in tmp_path.glob("cache_*.json")
        }
        assert len(before) == len(tables)

        sharded = ResultCache(directory=str(tmp_path), shards=16)
        trigger = "ff" + "c" * 62
        sharded.store(trigger, {"trigger": True})
        # The flat layout is gone; every entry lives in its shard with
        # its bytes unchanged.
        assert not list(tmp_path.glob("cache_*.json"))
        for fingerprint in fingerprints:
            migrated = tmp_path / sharded.shard_name(fingerprint) \
                / f"cache_{fingerprint}.json"
            assert migrated.read_bytes() == before[migrated.name]
        # And a fresh cache resolves all of them as disk hits.
        fresh = ResultCache(directory=str(tmp_path), shards=16)
        for index, fingerprint in enumerate(fingerprints):
            assert fresh.lookup(fingerprint) == {"seed": index}

    def test_filelock_wait_counter_counts_contention(self, tmp_path):
        import threading
        import time

        from repro.core.cache import FileLock

        waits = []
        lock = FileLock(str(tmp_path / ".lock"), on_wait=waits.append)
        release = threading.Event()

        def holder():
            with lock:
                release.wait(5)

        thread = threading.Thread(target=holder)
        thread.start()
        time.sleep(0.05)  # let the holder take the lock
        release_timer = threading.Timer(0.1, release.set)
        release_timer.start()
        with lock:
            pass
        thread.join()
        assert lock.contentions == 1
        assert lock.wait_seconds > 0
        assert len(waits) == 1 and waits[0] > 0

    def test_two_servers_disjoint_shards_no_lock_contention(self, tmp_path):
        """Two processes hammer one sharded directory — writes plus
        evictions — landing in disjoint shards: the per-shard locks mean
        neither ever waits (lock_waits == 0), and the global-accounting
        eviction still holds the cap across both writers' shards."""
        import os
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent("""
            import sys
            from repro.core.cache import ResultCache

            directory, base = sys.argv[1], int(sys.argv[2])
            cache = ResultCache(directory=directory, shards=16,
                                max_disk_entries=8)
            for i in range(24):
                # Shard = first byte % 16; each process cycles its own
                # half of the shard space, so the two never collide.
                prefix = base + (i % 8)
                fingerprint = f"{prefix:02x}" + f"{i:02d}" * 31
                cache.store(fingerprint, {"who": base, "i": i})
                cache.lookup(fingerprint)
            print(cache.stats.lock_waits)
        """)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path), str(base)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for base in (0, 8)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
            # Disjoint shards -> nobody ever waited on a lock.
            assert out.decode().strip() == "0"
        survivors = entry_files(tmp_path)
        assert 1 <= len(survivors) <= 8
        fresh = ResultCache(directory=str(tmp_path), shards=16)
        for path in survivors:
            fingerprint = path.name[len("cache_"):-len(".json")]
            payload = fresh.lookup(fingerprint)
            assert payload is not None and "who" in payload
