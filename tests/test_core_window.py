"""Unit tests for exact window optimization (FS* on a slice)."""

import itertools
import random

import pytest

from repro.core import ReductionRule, exact_window, run_fs, window_sweep
from repro.errors import OrderingError
from repro.functions import achilles_bad_order, achilles_heel
from repro.truth_table import TruthTable, count_subfunctions


def best_window_by_enumeration(table, order, start, width):
    best = None
    for perm in itertools.permutations(order[start:start + width]):
        candidate = order[:start] + list(perm) + order[start + width:]
        size = sum(count_subfunctions(table, candidate))
        best = size if best is None or size < best else best
    return best


class TestExactWindow:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_window_enumeration(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(3, 6)
        tt = TruthTable.random(n, seed=seed)
        order = list(range(n))
        rnd.shuffle(order)
        width = rnd.randint(2, n)
        start = rnd.randint(0, n - width)
        result = exact_window(tt, order, start, width)
        assert result.size == best_window_by_enumeration(tt, order, start, width)

    def test_outside_window_untouched(self):
        tt = TruthTable.random(5, seed=10)
        order = [4, 2, 0, 3, 1]
        result = exact_window(tt, order, 1, 3)
        assert list(result.order[:1]) == order[:1]
        assert list(result.order[4:]) == order[4:]
        assert sorted(result.order[1:4]) == sorted(order[1:4])

    def test_full_width_equals_global_optimum(self):
        tt = TruthTable.random(5, seed=11)
        result = exact_window(tt, list(range(5)), 0, 5)
        assert result.size == run_fs(tt).mincost

    def test_never_regresses(self):
        tt = TruthTable.random(5, seed=12)
        order = [1, 3, 0, 4, 2]
        before = sum(count_subfunctions(tt, order))
        result = exact_window(tt, order, 2, 2)
        assert result.size <= before

    def test_improved_flag(self):
        tt = achilles_heel(2)
        no_gain = exact_window(tt, [0, 1, 2, 3], 0, 2)
        assert not no_gain.improved
        gain = exact_window(tt, achilles_bad_order(2), 0, 4)
        assert gain.improved

    def test_validation(self):
        tt = TruthTable.random(3, seed=13)
        with pytest.raises(OrderingError):
            exact_window(tt, [0, 1], 0, 2)
        with pytest.raises(OrderingError):
            exact_window(tt, [0, 1, 2], 2, 2)
        with pytest.raises(OrderingError):
            exact_window(tt, [0, 1, 2], -1, 2)

    def test_zdd_rule(self):
        tt = TruthTable.random(4, seed=14)
        result = exact_window(tt, list(range(4)), 0, 4, rule=ReductionRule.ZDD)
        assert result.size == run_fs(tt, rule=ReductionRule.ZDD).mincost


class TestWindowSweep:
    def test_achilles_recovery(self):
        tt = achilles_heel(3)
        result = window_sweep(tt, initial_order=achilles_bad_order(3), width=4)
        assert result.size == 6  # internal nodes of the global optimum

    def test_sweep_never_worse(self):
        tt = TruthTable.random(6, seed=15)
        initial = list(range(6))
        result = window_sweep(tt, initial_order=initial, width=3)
        assert result.size <= sum(count_subfunctions(tt, initial))

    def test_sweep_result_consistent(self):
        tt = TruthTable.random(6, seed=16)
        result = window_sweep(tt, width=3)
        assert sum(count_subfunctions(tt, list(result.order))) == result.size

    def test_width_clamped_to_n(self):
        tt = TruthTable.random(3, seed=17)
        result = window_sweep(tt, width=5)
        assert result.size == run_fs(tt).mincost

    def test_width_validation(self):
        with pytest.raises(OrderingError):
            window_sweep(TruthTable.random(3, seed=0), width=1)

    def test_wider_windows_at_least_as_good(self):
        tt = TruthTable.random(6, seed=18)
        narrow = window_sweep(tt, width=2)
        wide = window_sweep(tt, width=4)
        assert wide.size <= narrow.size

    def test_counts_windows(self):
        tt = TruthTable.random(4, seed=19)
        result = window_sweep(tt, width=2)
        assert result.windows_solved >= 3  # one round minimum


class TestInvariantSurvivesOptimization:
    """The never-regress guard must be a real check, not an ``assert``
    stripped by ``python -O`` (the historical bug this class pins)."""

    def test_regression_raises_ordering_error(self, monkeypatch):
        # Force FS* to return a state whose block cost exceeds the
        # current arrangement's, simulating a broken kernel.
        import repro.core.window as window_module
        from repro.core.fs_star import run_fs_star as real_fs_star

        def inflated_fs_star(base, j_mask, rule, counters, config=None):
            final = real_fs_star(base, j_mask, rule, counters, config=config)
            return type(final)(
                n=final.n, mask=final.mask, pi=final.pi,
                mincost=final.mincost + 5, table=final.table,
                num_terminals=final.num_terminals, nodes=final.nodes,
                num_roots=final.num_roots,
            )

        monkeypatch.setattr(window_module, "run_fs_star", inflated_fs_star)
        tt = TruthTable.random(4, seed=30)
        with pytest.raises(OrderingError, match="regress"):
            exact_window(tt, [0, 1, 2, 3], 1, 2)

    def test_invariant_active_under_python_O(self, tmp_path):
        # Run the same broken-solver scenario in a subprocess with
        # assertions disabled; the OrderingError must still fire.
        import os
        import subprocess
        import sys

        script = tmp_path / "check_O.py"
        script.write_text(
            "import sys\n"
            "assert not __debug__, 'must run under python -O'\n"
            "import repro.core.window as window_module\n"
            "from repro.core.fs_star import run_fs_star as real\n"
            "from repro.errors import OrderingError\n"
            "from repro.truth_table import TruthTable\n"
            "def inflated(base, j_mask, rule, counters, config=None):\n"
            "    final = real(base, j_mask, rule, counters, config=config)\n"
            "    return type(final)(n=final.n, mask=final.mask,\n"
            "        pi=final.pi, mincost=final.mincost + 5,\n"
            "        table=final.table, num_terminals=final.num_terminals,\n"
            "        nodes=final.nodes, num_roots=final.num_roots)\n"
            "window_module.run_fs_star = inflated\n"
            "tt = TruthTable.random(4, seed=30)\n"
            "try:\n"
            "    window_module.exact_window(tt, [0, 1, 2, 3], 1, 2)\n"
            "except OrderingError:\n"
            "    sys.exit(0)\n"
            "sys.exit(1)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-O", str(script)], env=env,
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0, completed.stderr


class TestIncrementalCosting:
    def test_known_size_skips_top_recosting(self):
        from repro.analysis.counters import OperationCounters

        tt = TruthTable.random(6, seed=31)
        order = [3, 1, 5, 0, 4, 2]
        full = exact_window(tt, order, 1, 3)
        current = sum(count_subfunctions(tt, order))
        with_hint = exact_window(tt, order, 1, 3, known_size=current)
        assert with_hint.size == full.size
        assert with_hint.order == full.order
        # The hinted call never touches the levels above the window, so
        # it does strictly less kernel work.
        c_full, c_hint = OperationCounters(), OperationCounters()
        exact_window(tt, order, 1, 3, counters=c_full)
        exact_window(tt, order, 1, 3, counters=c_hint, known_size=current)
        assert c_hint.compactions < c_full.compactions

    def test_sweep_measures_initial_cost_once(self):
        # The sweep's reported size must match an independent recosting
        # even though it never re-runs a full chain after the first.
        tt = TruthTable.random(6, seed=32)
        initial = [5, 4, 3, 2, 1, 0]
        result = window_sweep(tt, initial_order=initial, width=3)
        assert result.size == sum(count_subfunctions(tt, list(result.order)))
        initial_cost = sum(count_subfunctions(tt, initial))
        assert result.improved == (result.size < initial_cost)

    def test_improved_false_when_initial_is_optimal(self):
        tt = TruthTable.random(5, seed=33)
        best = run_fs(tt)
        result = window_sweep(tt, initial_order=list(best.order), width=5)
        assert not result.improved
        assert result.size == best.mincost
