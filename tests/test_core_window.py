"""Unit tests for exact window optimization (FS* on a slice)."""

import itertools
import random

import pytest

from repro.core import ReductionRule, exact_window, run_fs, window_sweep
from repro.errors import OrderingError
from repro.functions import achilles_bad_order, achilles_heel
from repro.truth_table import TruthTable, count_subfunctions


def best_window_by_enumeration(table, order, start, width):
    best = None
    for perm in itertools.permutations(order[start:start + width]):
        candidate = order[:start] + list(perm) + order[start + width:]
        size = sum(count_subfunctions(table, candidate))
        best = size if best is None or size < best else best
    return best


class TestExactWindow:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_window_enumeration(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(3, 6)
        tt = TruthTable.random(n, seed=seed)
        order = list(range(n))
        rnd.shuffle(order)
        width = rnd.randint(2, n)
        start = rnd.randint(0, n - width)
        result = exact_window(tt, order, start, width)
        assert result.size == best_window_by_enumeration(tt, order, start, width)

    def test_outside_window_untouched(self):
        tt = TruthTable.random(5, seed=10)
        order = [4, 2, 0, 3, 1]
        result = exact_window(tt, order, 1, 3)
        assert list(result.order[:1]) == order[:1]
        assert list(result.order[4:]) == order[4:]
        assert sorted(result.order[1:4]) == sorted(order[1:4])

    def test_full_width_equals_global_optimum(self):
        tt = TruthTable.random(5, seed=11)
        result = exact_window(tt, list(range(5)), 0, 5)
        assert result.size == run_fs(tt).mincost

    def test_never_regresses(self):
        tt = TruthTable.random(5, seed=12)
        order = [1, 3, 0, 4, 2]
        before = sum(count_subfunctions(tt, order))
        result = exact_window(tt, order, 2, 2)
        assert result.size <= before

    def test_improved_flag(self):
        tt = achilles_heel(2)
        no_gain = exact_window(tt, [0, 1, 2, 3], 0, 2)
        assert not no_gain.improved
        gain = exact_window(tt, achilles_bad_order(2), 0, 4)
        assert gain.improved

    def test_validation(self):
        tt = TruthTable.random(3, seed=13)
        with pytest.raises(OrderingError):
            exact_window(tt, [0, 1], 0, 2)
        with pytest.raises(OrderingError):
            exact_window(tt, [0, 1, 2], 2, 2)
        with pytest.raises(OrderingError):
            exact_window(tt, [0, 1, 2], -1, 2)

    def test_zdd_rule(self):
        tt = TruthTable.random(4, seed=14)
        result = exact_window(tt, list(range(4)), 0, 4, rule=ReductionRule.ZDD)
        assert result.size == run_fs(tt, rule=ReductionRule.ZDD).mincost


class TestWindowSweep:
    def test_achilles_recovery(self):
        tt = achilles_heel(3)
        result = window_sweep(tt, initial_order=achilles_bad_order(3), width=4)
        assert result.size == 6  # internal nodes of the global optimum

    def test_sweep_never_worse(self):
        tt = TruthTable.random(6, seed=15)
        initial = list(range(6))
        result = window_sweep(tt, initial_order=initial, width=3)
        assert result.size <= sum(count_subfunctions(tt, initial))

    def test_sweep_result_consistent(self):
        tt = TruthTable.random(6, seed=16)
        result = window_sweep(tt, width=3)
        assert sum(count_subfunctions(tt, list(result.order))) == result.size

    def test_width_clamped_to_n(self):
        tt = TruthTable.random(3, seed=17)
        result = window_sweep(tt, width=5)
        assert result.size == run_fs(tt).mincost

    def test_width_validation(self):
        with pytest.raises(OrderingError):
            window_sweep(TruthTable.random(3, seed=0), width=1)

    def test_wider_windows_at_least_as_good(self):
        tt = TruthTable.random(6, seed=18)
        narrow = window_sweep(tt, width=2)
        wide = window_sweep(tt, width=4)
        assert wide.size <= narrow.size

    def test_counts_windows(self):
        tt = TruthTable.random(4, seed=19)
        result = window_sweep(tt, width=2)
        assert result.windows_solved >= 3  # one round minimum
