"""Tests for entropy bounds, complexity models, and operation counters."""

import math

import pytest

from repro.analysis import (
    OperationCounters,
    binary_entropy,
    binomial_entropy_bound,
    brute_force_cells,
    entropy_bound_check,
    fit_growth_rate,
    fs_star_table_cells,
    fs_table_cells,
    log2_binomial,
    preprocess_cells,
    theorem5_bound,
    theorem10_time_model,
    trivial_bound,
)


class TestEntropy:
    def test_endpoints(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == 1.0
        assert binary_entropy(0.3) < 1.0

    def test_symmetry(self):
        assert binary_entropy(0.2) == pytest.approx(binary_entropy(0.8))

    def test_domain(self):
        with pytest.raises(ValueError):
            binary_entropy(1.5)

    @pytest.mark.parametrize("n,k", [(10, 3), (20, 10), (30, 1), (16, 16)])
    def test_binomial_bound_holds(self, n, k):
        count, bound = entropy_bound_check(n, k)
        assert count <= bound * (1 + 1e-12)

    def test_binomial_entropy_bound_matches_check(self):
        assert binomial_entropy_bound(10, 3) == entropy_bound_check(10, 3)[1]

    def test_log2_binomial_exact(self):
        for n in range(0, 25, 4):
            for k in range(0, n + 1, 3):
                assert log2_binomial(n, k) == pytest.approx(
                    math.log2(math.comb(n, k)), abs=1e-9
                )

    def test_log2_binomial_validation(self):
        with pytest.raises(ValueError):
            log2_binomial(3, 4)


class TestComplexityModels:
    def test_fs_cells_identity(self):
        for n in range(1, 14):
            assert fs_table_cells(n) == n * 3 ** (n - 1)

    def test_fs_cells_within_theorem5_shape(self):
        # measured/3^n ratio is polynomially bounded (here: <= n).
        for n in range(2, 14):
            assert fs_table_cells(n) <= n * theorem5_bound(n)

    def test_fs_star_cells_reduces_to_fs(self):
        for n in range(1, 10):
            assert fs_star_table_cells(n, 0, n) == fs_table_cells(n)

    def test_fs_star_validation(self):
        with pytest.raises(ValueError):
            fs_star_table_cells(5, 3, 3)

    def test_brute_force_cells(self):
        assert brute_force_cells(3) == 6 * 7

    def test_trivial_vs_theorem5_crossover(self):
        # n! 2^n overtakes 3^n somewhere small and stays above.
        assert trivial_bound(2) < theorem5_bound(2) * 2
        for n in range(4, 16):
            assert trivial_bound(n) > theorem5_bound(n)

    def test_preprocess_cells_monotone(self):
        cells = [preprocess_cells(12, l1) for l1 in range(1, 6)]
        assert cells == sorted(cells)

    def test_theorem10_model_structure(self):
        model = theorem10_time_model(20, (0.18, 0.34))
        assert set(model) >= {"preprocess", "L_2", "L_3", "total"}
        assert model["total"] >= model["preprocess"]
        assert model["total"] < trivial_bound(20)


class TestGrowthFit:
    def test_recovers_exact_exponential(self):
        ns = [4, 6, 8, 10, 12]
        counts = [3.0 ** n for n in ns]
        base, coefficient = fit_growth_rate(ns, counts)
        assert base == pytest.approx(3.0, rel=1e-9)
        assert coefficient == pytest.approx(1.0, rel=1e-6)

    def test_tolerates_polynomial_factor(self):
        # The polynomial factor inflates the fitted base slightly (by
        # d(log2 n)/dn over the window); it must stay well below the next
        # interesting base (n! 2^n grows super-exponentially).
        ns = list(range(6, 16))
        counts = [n * 3.0 ** n for n in ns]
        base, _ = fit_growth_rate(ns, counts)
        assert 3.0 < base < 3.5

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_growth_rate([1], [3.0])
        with pytest.raises(ValueError):
            fit_growth_rate([1, 2], [1.0, 0.0])


class TestCounters:
    def test_merge(self):
        a = OperationCounters(table_cells=5, nodes_created=2)
        a.add_extra("rounds", 3)
        b = OperationCounters(table_cells=7, oracle_queries=4)
        b.add_extra("rounds", 1)
        a.merge(b)
        assert a.table_cells == 12
        assert a.oracle_queries == 4
        assert a.extra["rounds"] == 4

    def test_snapshot_includes_extras(self):
        c = OperationCounters(compactions=2)
        c.add_extra("custom", 9)
        snap = c.snapshot()
        assert snap["compactions"] == 2 and snap["custom"] == 9
