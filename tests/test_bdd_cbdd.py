"""Unit tests for the complement-edge BDD manager."""

import random

import pytest

from repro.bdd.cbdd import (
    CBDD,
    FALSE_EDGE,
    TRUE_EDGE,
    cbdd_size,
    edge_complemented,
    edge_node,
    negate,
)
from repro.errors import DimensionError, OrderingError
from repro.functions import parity
from repro.truth_table import TruthTable, obdd_size


class TestEdgeEncoding:
    def test_terminals(self):
        assert edge_node(TRUE_EDGE) == 0 and not edge_complemented(TRUE_EDGE)
        assert edge_node(FALSE_EDGE) == 0 and edge_complemented(FALSE_EDGE)
        assert negate(TRUE_EDGE) == FALSE_EDGE

    def test_negate_involution(self):
        assert negate(negate(42)) == 42


class TestCanonicity:
    def test_then_edge_always_regular(self):
        m = CBDD(4)
        rnd = random.Random(0)
        root = m.from_truth_table(TruthTable.random(4, seed=1))
        for node, (_, lo, hi) in m._nodes.items():
            assert not edge_complemented(hi)

    def test_complement_shares_all_nodes(self):
        m = CBDD(5)
        tt = TruthTable.random(5, seed=2)
        f = m.from_truth_table(tt)
        g = m.from_truth_table(~tt)
        assert g == negate(f)
        assert m.reachable_nodes(f) == m.reachable_nodes(g)

    def test_de_morgan_is_identity(self):
        m = CBDD(3)
        a, b = m.var(0), m.var(1)
        assert m.apply_not(m.apply_and(a, b)) == m.apply_or(
            m.apply_not(a), m.apply_not(b)
        )

    def test_xor_self_dual_sharing(self):
        m = CBDD(3)
        x = m.apply_xor(m.var(0), m.var(1))
        y = m.apply_xor(m.nvar(0), m.var(1))
        assert edge_node(x) == edge_node(y)
        assert y == negate(x)

    def test_bad_order(self):
        with pytest.raises(OrderingError):
            CBDD(2, order=[1, 1])

    def test_var_range(self):
        with pytest.raises(DimensionError):
            CBDD(2).var(5)


class TestSemantics:
    @pytest.mark.parametrize("seed", range(8))
    def test_roundtrip(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(0, 5)
        order = list(range(n))
        rnd.shuffle(order)
        tt = TruthTable.random(n, seed=seed + 10)
        m = CBDD(n, order)
        root = m.from_truth_table(tt)
        assert m.to_truth_table(root) == tt
        assert m.to_truth_table(negate(root)) == ~tt

    def test_ite_general(self):
        import itertools

        m = CBDD(3)
        f = m.ite(m.var(0), m.var(1), m.nvar(2))
        for bits in itertools.product((0, 1), repeat=3):
            expected = bits[1] if bits[0] else 1 - bits[2]
            assert m.evaluate(f, list(bits)) == expected

    def test_evaluate_arity(self):
        m = CBDD(2)
        with pytest.raises(DimensionError):
            m.evaluate(TRUE_EDGE, [0])

    @pytest.mark.parametrize("seed", range(6))
    def test_satcount(self, seed):
        tt = TruthTable.random(5, seed=seed + 20)
        m = CBDD(5)
        root = m.from_truth_table(tt)
        assert m.satcount(root) == tt.count_ones()
        assert m.satcount(negate(root)) == 32 - tt.count_ones()

    def test_satcount_terminals(self):
        m = CBDD(4)
        assert m.satcount(TRUE_EDGE) == 16
        assert m.satcount(FALSE_EDGE) == 0


class TestSizes:
    @pytest.mark.parametrize("seed", range(6))
    def test_never_larger_than_plain(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 6)
        order = list(range(n))
        rnd.shuffle(order)
        tt = TruthTable.random(n, seed=seed + 30)
        assert cbdd_size(tt, order, include_terminals=False) <= obdd_size(
            tt, order, include_terminals=False
        )

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_parity_halves(self, n):
        # Parity: n internal nodes with complement edges vs 2n - 1 plain.
        assert cbdd_size(parity(n), list(range(n)),
                         include_terminals=False) == n

    def test_single_terminal(self):
        tt = TruthTable.random(3, seed=40)
        m = CBDD(3)
        root = m.from_truth_table(tt)
        assert m.size(root) == m.size(root, include_terminals=False) + 1

    def test_constant_sizes(self):
        m = CBDD(3)
        assert m.size(TRUE_EDGE) == 1
        assert m.size(FALSE_EDGE) == 1
