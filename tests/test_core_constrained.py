"""Unit tests for precedence-constrained exact ordering and .bench IO."""

import itertools
import random

import pytest

from repro.core import (
    ReductionRule,
    order_satisfies,
    run_fs,
    run_fs_constrained,
)
from repro.errors import DimensionError, OrderingError, ParseError
from repro.truth_table import TruthTable, count_subfunctions


def constrained_brute_force(table, precedence):
    return min(
        sum(count_subfunctions(table, list(perm)))
        for perm in itertools.permutations(range(table.n))
        if order_satisfies(perm, precedence)
    )


class TestConstrainedFS:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_constrained_brute_force(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(2, 5)
        table = TruthTable.random(n, seed=seed)
        precedence = []
        for _ in range(rnd.randint(1, 3)):
            a, b = sorted(rnd.sample(range(n), 2))
            precedence.append((a, b))
        result = run_fs_constrained(table, precedence)
        assert order_satisfies(result.order, precedence)
        assert result.mincost == constrained_brute_force(table, precedence)

    def test_empty_precedence_equals_fs(self):
        table = TruthTable.random(5, seed=10)
        assert run_fs_constrained(table, []).mincost == run_fs(table).mincost

    def test_constraints_can_cost(self):
        # Force the achilles pairs apart: the constrained optimum exceeds
        # the free optimum.
        from repro.functions import achilles_heel

        table = achilles_heel(2)
        forced = run_fs_constrained(table, [(0, 2), (2, 1)])  # 0 < 2 < 1
        free = run_fs(table)
        assert forced.mincost > free.mincost

    def test_total_order_single_chain(self):
        table = TruthTable.random(4, seed=11)
        chain = [(0, 1), (1, 2), (2, 3)]
        result = run_fs_constrained(table, chain)
        assert result.order == (0, 1, 2, 3)
        assert result.feasible_subsets == 4
        assert result.mincost == sum(count_subfunctions(table, [0, 1, 2, 3]))

    def test_transitive_closure(self):
        # a<b and b<c implies a<c even without stating it.
        table = TruthTable.random(4, seed=12)
        result = run_fs_constrained(table, [(0, 1), (1, 2)])
        assert result.order.index(0) < result.order.index(2)

    def test_cycle_rejected(self):
        with pytest.raises(OrderingError):
            run_fs_constrained(TruthTable.random(3, seed=0),
                               [(0, 1), (1, 2), (2, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(OrderingError):
            run_fs_constrained(TruthTable.random(2, seed=0), [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(DimensionError):
            run_fs_constrained(TruthTable.random(2, seed=0), [(0, 5)])

    def test_feasible_subsets_shrink(self):
        table = TruthTable.random(5, seed=13)
        free = run_fs_constrained(table, [])
        constrained = run_fs_constrained(table, [(0, 1), (0, 2), (0, 3)])
        assert constrained.feasible_subsets < free.feasible_subsets == 31

    def test_zdd_rule(self):
        table = TruthTable.random(4, seed=14)
        precedence = [(0, 3)]
        result = run_fs_constrained(table, precedence, rule=ReductionRule.ZDD)
        assert order_satisfies(result.order, precedence)
        from repro.bdd import ZDD

        manager = ZDD(4, list(result.order))
        assert (
            manager.size(manager.from_truth_table(table),
                         include_terminals=False)
            == result.mincost
        )


class TestBenchFormat:
    def test_c17_matches_programmatic_circuit(self):
        from repro.expr import to_truth_table
        from repro.functions import c17
        from repro.io import C17_BENCH, parse_bench

        assert to_truth_table(parse_bench(C17_BENCH)) == to_truth_table(c17())

    def test_output_selection(self):
        from repro.io import C17_BENCH, parse_bench

        circuit = parse_bench(C17_BENCH, output="23")
        assert circuit.output == "23"
        with pytest.raises(ParseError):
            parse_bench(C17_BENCH, output="99")

    def test_roundtrip(self):
        from repro.expr import to_truth_table
        from repro.io import C17_BENCH, parse_bench, write_bench

        circuit = parse_bench(C17_BENCH)
        again = parse_bench(write_bench(circuit, outputs=["22", "23"]))
        assert to_truth_table(again) == to_truth_table(circuit)

    def test_out_of_order_assignments(self):
        from repro.io import parse_bench

        text = ("INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
                "y = NOT(t)\nt = AND(a, b)\n")
        circuit = parse_bench(text)
        assert circuit.evaluate([1, 1]) == 0

    @pytest.mark.parametrize("bad", [
        "OUTPUT(y)\ny = AND(a, b)\n",                       # no inputs
        "INPUT(a)\ny = AND(a, a)\n",                        # no outputs
        "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n",               # unknown gate
        "INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n",                # sequential
        "INPUT(a)\nOUTPUT(y)\nthis is not a line\n",        # junk
        "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n",         # undriven
        "INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = NOT(y)\n",    # cycle
    ])
    def test_errors(self, bad):
        from repro.io import parse_bench

        with pytest.raises(ParseError):
            parse_bench(bad)

    def test_file_roundtrip(self, tmp_path):
        from repro.expr import to_truth_table
        from repro.io import C17_BENCH, read_bench

        path = tmp_path / "c17.bench"
        path.write_text(C17_BENCH)
        circuit = read_bench(path, output="22")
        table = to_truth_table(circuit)
        assert table.n == 5

    def test_optimizer_pipeline(self, tmp_path):
        from repro.expr import to_truth_table
        from repro.io import C17_BENCH, parse_bench

        table = to_truth_table(parse_bench(C17_BENCH))
        result = run_fs(table)
        assert result.mincost == 4  # the c17 n22 optimum (golden corpus)
