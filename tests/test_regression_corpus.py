"""Golden regression corpus: certified optimal sizes for named functions.

These values were computed by the validated DP (which the rest of the
suite cross-checks against brute force, the A* search, and independent
managers) and are now pinned: any future change to the compaction kernel,
the DP, or a function generator that shifts an optimum will trip exactly
the affected row.
"""

import pytest

from repro.core import ReductionRule, run_fs
from repro.functions import (
    achilles_heel,
    adder_bit,
    comparator,
    equality,
    hidden_weighted_bit,
    interval,
    majority,
    multiplexer,
    multiplication_bit,
    parity,
    threshold,
)

FUNCTIONS = {
    "achilles(1)": lambda: achilles_heel(1),
    "achilles(2)": lambda: achilles_heel(2),
    "achilles(3)": lambda: achilles_heel(3),
    "achilles(4)": lambda: achilles_heel(4),
    "parity(3)": lambda: parity(3),
    "parity(6)": lambda: parity(6),
    "majority(5)": lambda: majority(5),
    "majority(7)": lambda: majority(7),
    "threshold(6,2)": lambda: threshold(6, 2),
    "threshold(6,4)": lambda: threshold(6, 4),
    "hwb(4)": lambda: hidden_weighted_bit(4),
    "hwb(5)": lambda: hidden_weighted_bit(5),
    "hwb(6)": lambda: hidden_weighted_bit(6),
    "hwb(7)": lambda: hidden_weighted_bit(7),
    "mux(2)": lambda: multiplexer(2),
    "adder(3,0)": lambda: adder_bit(3, 0),
    "adder(3,1)": lambda: adder_bit(3, 1),
    "adder(3,2)": lambda: adder_bit(3, 2),
    "adder(3,3)": lambda: adder_bit(3, 3),
    "comparator(2)": lambda: comparator(2),
    "comparator(3)": lambda: comparator(3),
    "equality(3)": lambda: equality(3),
    "mult(2,1)": lambda: multiplication_bit(2, 1),
    "mult(3,2)": lambda: multiplication_bit(3, 2),
    "interval(4,3,11)": lambda: interval(4, 3, 11),
}

# (name, optimal BDD, optimal ZDD, optimal CBDD) — internal nodes.
GOLDEN = [
    ("achilles(1)", 2, 2, 2),
    ("achilles(2)", 4, 7, 4),
    ("achilles(3)", 6, 12, 6),
    ("achilles(4)", 8, 17, 8),
    ("parity(3)", 5, 4, 3),
    ("parity(6)", 11, 10, 6),
    ("majority(5)", 9, 11, 9),
    ("majority(7)", 16, 19, 16),
    ("threshold(6,2)", 10, 14, 10),
    ("threshold(6,4)", 12, 14, 12),
    ("hwb(4)", 7, 8, 7),
    ("hwb(5)", 14, 13, 12),
    ("hwb(6)", 21, 21, 18),
    ("hwb(7)", 31, 32, 28),
    ("mux(2)", 7, 13, 7),
    ("adder(3,0)", 3, 6, 2),
    ("adder(3,1)", 6, 8, 4),
    ("adder(3,2)", 9, 11, 7),
    ("adder(3,3)", 8, 12, 8),
    ("comparator(2)", 5, 5, 5),
    ("comparator(3)", 8, 9, 8),
    ("equality(3)", 9, 6, 8),
    ("mult(2,1)", 6, 7, 4),
    ("mult(3,2)", 12, 14, 8),
    ("interval(4,3,11)", 5, 6, 4),
]


@pytest.mark.parametrize("name,bdd,zdd,cbdd", GOLDEN,
                         ids=[row[0] for row in GOLDEN])
def test_golden_optima(name, bdd, zdd, cbdd):
    table = FUNCTIONS[name]()
    assert run_fs(table).mincost == bdd
    assert run_fs(table, rule=ReductionRule.ZDD).mincost == zdd
    assert run_fs(table, rule=ReductionRule.CBDD).mincost == cbdd


def test_corpus_structural_relations():
    """Cross-row facts the corpus must keep honoring."""
    by_name = {name: (b, z, c) for name, b, z, c in GOLDEN}
    # complement edges never lose to plain BDDs
    for name, (b, _, c) in by_name.items():
        assert c <= b, name
    # achilles grows linearly: +2 internal nodes per pair
    assert [by_name[f"achilles({p})"][0] for p in (1, 2, 3, 4)] == [2, 4, 6, 8]
    # parity: 2n-1 plain, n complement-edge
    assert by_name["parity(6)"][0] == 11 and by_name["parity(6)"][2] == 6
    # hwb grows super-linearly (the hard-function signal at small n)
    hwb = [by_name[f"hwb({n})"][0] for n in (4, 5, 6, 7)]
    assert all(b > a for a, b in zip(hwb, hwb[1:]))
    assert hwb[3] - hwb[2] > hwb[1] - hwb[0]
