"""Unit tests for the ZDD manager."""

import itertools
import random

import pytest

from repro.bdd import ZDD
from repro.bdd.node import FALSE, TRUE
from repro.errors import DimensionError, OrderingError
from repro.truth_table import TruthTable


@pytest.fixture
def z():
    return ZDD(4)


def family(z, sets):
    return z.from_sets([set(s) for s in sets])


class TestBasics:
    def test_terminals(self, z):
        assert z.empty == FALSE and z.base == TRUE
        assert z.count(z.empty) == 0
        assert z.count(z.base) == 1
        assert list(z.iter_sets(z.base)) == [frozenset()]

    def test_singleton(self, z):
        s = z.singleton(2)
        assert set(z.iter_sets(s)) == {frozenset({2})}

    def test_bad_order(self):
        with pytest.raises(OrderingError):
            ZDD(2, order=[1, 1])

    def test_zero_suppression_rule(self, z):
        # A node whose hi edge is empty must not exist.
        u = z.make(0, z.base, z.empty)
        assert u == z.base

    def test_unique_table(self, z):
        a = z.make(1, z.base, z.base)
        b = z.make(1, z.base, z.base)
        assert a == b


class TestFamilyAlgebra:
    def test_union_semantics(self, z):
        f = family(z, [{0}, {1, 2}])
        g = family(z, [{1, 2}, {3}])
        assert set(z.iter_sets(z.union(f, g))) == {
            frozenset({0}), frozenset({1, 2}), frozenset({3})
        }

    def test_intersection_semantics(self, z):
        f = family(z, [{0}, {1, 2}, set()])
        g = family(z, [{1, 2}, set(), {3}])
        assert set(z.iter_sets(z.intersection(f, g))) == {
            frozenset({1, 2}), frozenset()
        }

    def test_difference_semantics(self, z):
        f = family(z, [{0}, {1}, set()])
        g = family(z, [{1}, set()])
        assert set(z.iter_sets(z.difference(f, g))) == {frozenset({0})}

    def test_difference_with_base(self, z):
        f = family(z, [{0}, set()])
        assert set(z.iter_sets(z.difference(f, z.base))) == {frozenset({0})}

    def test_union_idempotent(self, z):
        f = family(z, [{0, 3}, {1}])
        assert z.union(f, f) == f

    def test_intersection_with_empty(self, z):
        f = family(z, [{0}])
        assert z.intersection(f, z.empty) == z.empty

    def test_join(self, z):
        f = family(z, [{0}, {1}])
        g = family(z, [{2}, set()])
        assert set(z.iter_sets(z.join(f, g))) == {
            frozenset({0, 2}), frozenset({0}), frozenset({1, 2}), frozenset({1})
        }

    def test_join_absorbs_duplicates(self, z):
        f = family(z, [{0}, set()])
        assert z.join(f, f) == family(z, [{0}, set()])

    def test_subset1(self, z):
        f = family(z, [{0, 1}, {1, 2}, {3}])
        assert set(z.iter_sets(z.subset1(f, 1))) == {frozenset({0}), frozenset({2})}

    def test_subset0(self, z):
        f = family(z, [{0, 1}, {1, 2}, {3}])
        assert set(z.iter_sets(z.subset0(f, 1))) == {frozenset({3})}

    def test_subset_decomposition(self, z):
        # f == subset0(f, v) UNION join(subset1(f, v), {{v}})
        f = family(z, [{0, 1}, {2}, set(), {1, 3}])
        for v in range(4):
            rebuilt = z.union(
                z.subset0(f, v), z.join(z.subset1(f, v), z.singleton(v))
            )
            assert rebuilt == f

    def test_algebra_against_python_sets(self, z):
        rnd = random.Random(7)
        universe = list(range(4))
        fam_a = {frozenset(v for v in universe if rnd.random() < 0.5) for _ in range(6)}
        fam_b = {frozenset(v for v in universe if rnd.random() < 0.5) for _ in range(6)}
        a = z.from_sets([set(s) for s in fam_a])
        b = z.from_sets([set(s) for s in fam_b])
        assert set(z.iter_sets(z.union(a, b))) == fam_a | fam_b
        assert set(z.iter_sets(z.intersection(a, b))) == fam_a & fam_b
        assert set(z.iter_sets(z.difference(a, b))) == fam_a - fam_b


class TestCanonicityAndSize:
    def test_from_sets_canonical(self, z):
        f = family(z, [{0}, {1, 2}, set()])
        g = family(z, [set(), {1, 2}, {0}])
        assert f == g

    def test_count_matches_enumeration(self, z):
        f = family(z, [{0}, {1}, {0, 1}, {2, 3}])
        assert z.count(f) == len(list(z.iter_sets(f)))

    def test_sparse_family_is_small(self):
        # ZDD of {{0}, {5}} over 6 vars has exactly 2 internal nodes.
        z = ZDD(6)
        f = z.from_sets([{0}, {5}])
        assert z.size(f, include_terminals=False) == 2

    def test_level_widths(self):
        z = ZDD(3)
        f = z.from_sets([{0, 1, 2}])
        assert z.level_widths(f) == [1, 1, 1]


class TestTruthTableBridge:
    @pytest.mark.parametrize("seed", range(8))
    def test_roundtrip(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 5)
        order = list(range(n))
        rnd.shuffle(order)
        tt = TruthTable.random(n, seed=seed + 300)
        z = ZDD(n, order)
        root = z.from_truth_table(tt)
        assert z.to_truth_table(root) == tt

    def test_evaluate_zero_suppression(self):
        z = ZDD(3)
        root = z.from_sets([{1}])
        # {1} is in the family; {0,1} is not (x0 skipped => must be 0)
        assert z.evaluate(root, [0, 1, 0]) == 1
        assert z.evaluate(root, [1, 1, 0]) == 0

    def test_evaluate_arity(self):
        z = ZDD(2)
        with pytest.raises(DimensionError):
            z.evaluate(z.base, [0])

    def test_family_and_characteristic_function_agree(self):
        z = ZDD(4)
        sets = [{0, 2}, {1}, set(), {0, 1, 2, 3}]
        root = z.from_sets(sets)
        tt = z.to_truth_table(root)
        for bits in itertools.product((0, 1), repeat=4):
            member = {v for v in range(4) if bits[v]} in [set(s) for s in sets]
            assert tt(*bits) == int(member)

    def test_tautology_zdd(self):
        # Constant-1 function: family of all subsets.
        z = ZDD(3)
        root = z.from_truth_table(TruthTable.constant(3, 1))
        assert z.count(root) == 8


class TestExtendedAlgebra:
    """Minato's deeper operators: maximal/minimal/nonsubsets/nonsupersets."""

    def brute(self, z, fam):
        return z.from_sets([set(s) for s in fam])

    def test_symmetric_difference(self):
        z = ZDD(3)
        a = self.brute(z, [{0}, {1}, {0, 2}])
        b = self.brute(z, [{1}, {2}])
        assert set(z.iter_sets(z.symmetric_difference(a, b))) == {
            frozenset({0}), frozenset({0, 2}), frozenset({2})
        }

    def test_maximal(self):
        z = ZDD(4)
        f = self.brute(z, [{0}, {0, 1}, {2}, {0, 1, 3}, set()])
        assert set(z.iter_sets(z.maximal(f))) == {
            frozenset({0, 1, 3}), frozenset({2})
        }

    def test_minimal(self):
        z = ZDD(4)
        f = self.brute(z, [{0}, {0, 1}, {2}, {0, 1, 3}])
        assert set(z.iter_sets(z.minimal(f))) == {
            frozenset({0}), frozenset({2})
        }

    def test_maximal_minimal_of_antichain_identity(self):
        z = ZDD(4)
        antichain = self.brute(z, [{0, 1}, {2, 3}, {0, 3}])
        assert z.maximal(antichain) == antichain
        assert z.minimal(antichain) == antichain

    def test_nonsubsets(self):
        z = ZDD(3)
        f = self.brute(z, [{0}, {1, 2}, set()])
        g = self.brute(z, [{0, 1}])
        # {0} and {} are subsets of {0,1}; {1,2} is not
        assert set(z.iter_sets(z.nonsubsets(f, g))) == {frozenset({1, 2})}

    def test_nonsupersets(self):
        z = ZDD(3)
        f = self.brute(z, [{0}, {0, 1}, {2}])
        g = self.brute(z, [{0}])
        assert set(z.iter_sets(z.nonsupersets(f, g))) == {frozenset({2})}

    def test_nonsubsets_empty_g(self):
        z = ZDD(2)
        f = self.brute(z, [{0}])
        assert z.nonsubsets(f, z.empty) == f
        assert z.nonsupersets(f, z.empty) == f

    def test_nonsupersets_base_g_kills_all(self):
        z = ZDD(2)
        f = self.brute(z, [{0}, set()])
        assert z.nonsupersets(f, z.base) == z.empty

    def test_supersets_of(self):
        z = ZDD(3)
        f = self.brute(z, [{0, 1}, {1}, {1, 2}, {0}])
        assert set(z.iter_sets(z.supersets_of(f, [1]))) == {
            frozenset({0, 1}), frozenset({1}), frozenset({1, 2})
        }

    def test_randomized_against_python_sets(self):
        import random as rnd_mod

        rnd = rnd_mod.Random(9)
        for _ in range(20):
            n = rnd.randint(1, 5)
            z = ZDD(n)
            fam_a = {frozenset(v for v in range(n) if rnd.random() < 0.5)
                     for _ in range(6)}
            fam_b = {frozenset(v for v in range(n) if rnd.random() < 0.5)
                     for _ in range(6)}
            a = self.brute(z, fam_a)
            b = self.brute(z, fam_b)
            assert set(z.iter_sets(z.maximal(a))) == {
                s for s in fam_a if not any(s < t for t in fam_a)
            }
            assert set(z.iter_sets(z.minimal(a))) == {
                s for s in fam_a if not any(t < s for t in fam_a)
            }
            assert set(z.iter_sets(z.nonsubsets(a, b))) == {
                s for s in fam_a if not any(s <= t for t in fam_b)
            }
            assert set(z.iter_sets(z.nonsupersets(a, b))) == {
                s for s in fam_a if not any(t <= s for t in fam_b)
            }
