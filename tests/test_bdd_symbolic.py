"""Unit tests for symbolic state traversal."""

import random

import pytest

from repro.bdd import BDD
from repro.bdd.node import FALSE
from repro.bdd.symbolic import ReachabilityResult, TransitionSystem, rename
from repro.core import run_fs
from repro.errors import DimensionError
from repro.truth_table import TruthTable


def explicit_bfs(successors, initial, num_states):
    seen = set(initial)
    frontier = set(initial)
    while frontier:
        nxt = {b for a in frontier for b in successors.get(a, [])} - seen
        seen |= nxt
        frontier = nxt
    return seen


class TestRename:
    def test_basic_substitution(self):
        manager = BDD(4)
        f = manager.apply_and(manager.var(2), manager.var(3))
        g = rename(manager, f, {2: 0, 3: 1})
        assert g == manager.apply_and(manager.var(0), manager.var(1))

    def test_overlap_rejected(self):
        manager = BDD(3)
        with pytest.raises(DimensionError):
            rename(manager, manager.var(0), {0: 1, 1: 2})

    def test_rename_preserves_semantics(self):
        manager = BDD(4)
        f = manager.apply_xor(manager.var(2), manager.apply_and(
            manager.var(3), manager.var(2)))
        g = rename(manager, f, {2: 0, 3: 1})
        for a in range(4):
            bits = [a & 1, (a >> 1) & 1, 0, 0]
            swapped = [0, 0, a & 1, (a >> 1) & 1]
            assert manager.evaluate(g, bits) == manager.evaluate(f, swapped)


class TestTransitionSystem:
    def test_single_edge(self):
        ts = TransitionSystem(2)
        ts.add_transition(1, 3)
        img = ts.image(ts.state_cube(1))
        assert ts.states_in(img) == {3}

    def test_state_set_roundtrip(self):
        ts = TransitionSystem(3)
        states = {0, 3, 5}
        assert ts.states_in(ts.state_set(states)) == states
        assert ts.count_states(ts.state_set(states)) == 3

    def test_image_of_empty(self):
        ts = TransitionSystem(2)
        ts.add_transition(0, 1)
        assert ts.image(FALSE) == FALSE

    @pytest.mark.parametrize("seed", range(6))
    def test_reachability_matches_explicit_bfs(self, seed):
        rnd = random.Random(seed)
        k = rnd.randint(2, 4)
        N = 1 << k
        successors = {}
        for _ in range(3 * N):
            a, b = rnd.randrange(N), rnd.randrange(N)
            successors.setdefault(a, []).append(b)
        ts = TransitionSystem.from_successor_function(
            k, lambda s: successors.get(s, [])
        )
        initial = {rnd.randrange(N)}
        result = ts.reachable(initial)
        expected = explicit_bfs(successors, initial, N)
        assert ts.states_in(result.states) == expected
        assert result.num_states == len(expected)

    def test_iteration_count_is_bfs_depth(self):
        # A straight line 0 -> 1 -> 2 -> 3 needs 4 image steps (the last
        # one discovering nothing).
        ts = TransitionSystem(2)
        for s in range(3):
            ts.add_transition(s, s + 1)
        result = ts.reachable([0])
        assert result.num_states == 4
        assert result.iterations == 4
        assert result.frontier_sizes[-1] == 1  # FALSE terminal only

    def test_preimage_inverts_image(self):
        ts = TransitionSystem(3)
        for s in range(8):
            ts.add_transition(s, (s * 3 + 1) % 8)
        target = {2, 5}
        pre = ts.states_in(ts.preimage(ts.state_set(target)))
        expected = {s for s in range(8) if ((s * 3 + 1) % 8) in target}
        assert pre == expected

    def test_safety_verification(self):
        # Counter modulo 6 over 3 bits: states 6 and 7 unreachable.
        ts = TransitionSystem.from_successor_function(
            3, lambda s: [(s + 1) % 6] if s < 6 else [s]
        )
        assert not ts.can_reach([0], [6])
        assert not ts.can_reach([0], [7])
        assert ts.can_reach([0], [5])

    def test_reachable_set_feeds_optimizer(self):
        ts = TransitionSystem.from_successor_function(
            3, lambda s: [(s + 2) % 8]
        )
        table = ts.reachable_set_table([0])
        assert table.count_ones() == 4  # even states
        result = run_fs(table)
        assert result.mincost >= 1

    def test_validation(self):
        with pytest.raises(DimensionError):
            TransitionSystem(0)
