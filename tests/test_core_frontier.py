"""Tests for the pluggable frontier stores (:mod:`repro.core.frontier`).

The store contract: a frontier store changes *where the retained layer's
bytes live*, never what the sweep computes.  ``DictFrontier`` (the
historical dict of entries) and ``PackedFrontier`` (bit-packed columns)
must produce bit-identical results AND operation counters across every
``kernel x backend x jobs x FrontierPolicy`` cell; checkpoints written
under either store must resume under the other; and the packed store's
byte accounting must be exact — deterministic enough for the budget's
frontier cap to abort at the same layer under every backend.

Process-backed tests share one module-scoped ``ProcessBackend`` so the
interpreter-spawn cost is paid once, not per test.
"""

import numpy as np
import pytest

from repro.analysis.counters import OperationCounters
from repro.core import (
    Budget,
    DictFrontier,
    EngineConfig,
    FaultInjector,
    FrontierStore,
    InjectedFault,
    PackedFrontier,
    ProcessBackend,
    available_frontier_stores,
    create_frontier_store,
    get_frontier_store,
    register_frontier_store,
    run_fs,
    run_fs_constrained,
    run_fs_shared,
)
from repro.core import frontier as frontier_module
from repro.core.checkpoint import Skeleton
from repro.core.frontier import (
    BaseOverlay,
    _decode_cells,
    _encode_cells,
    _row_bytes,
    batch_sweep_chunk,
)
from repro.core.spec import FSState, ReductionRule
from repro.errors import BudgetExceeded
from repro.observability import STATE_OVERHEAD_BYTES, frontier_nbytes
from repro.truth_table import TruthTable


def paper_counters(counters):
    """Counter snapshot minus the process backend's transport tallies."""
    snap = counters.snapshot()
    snap.pop("tasks_shipped", None)
    snap.pop("bytes_shipped", None)
    return snap


@pytest.fixture(scope="module")
def process_pool():
    """One spawned pool for the whole module (spawn cost is seconds)."""
    backend = ProcessBackend(jobs=4)
    yield backend
    backend.close()


def make_state(mask, pi, mincost, table, num_terminals=2, num_roots=1,
               nodes=None):
    """An FSState with ``n`` derived so the table shape validates."""
    table = np.asarray(table, dtype=np.int64)
    n = int(mask).bit_count() + (len(table) // num_roots).bit_length() - 1
    return FSState(n=n, mask=mask, pi=pi, mincost=mincost, table=table,
                   num_terminals=num_terminals, nodes=nodes,
                   num_roots=num_roots)


# ----------------------------------------------------------------------
# registry + config plumbing
# ----------------------------------------------------------------------

class TestStoreRegistry:
    def test_builtins_registered(self):
        assert available_frontier_stores() == ["dict", "packed"]
        assert get_frontier_store("dict") is DictFrontier
        assert get_frontier_store("packed") is PackedFrontier

    def test_unknown_store_raises_with_choices(self):
        with pytest.raises(ValueError, match="packed"):
            get_frontier_store("gpu")
        with pytest.raises(ValueError):
            run_fs(TruthTable.random(2, seed=0), frontier_store="gpu")

    def test_config_validates_store(self):
        with pytest.raises(ValueError):
            EngineConfig(frontier_store="nope")
        with pytest.raises(ValueError):
            EngineConfig(frontier_store=42)
        assert EngineConfig(frontier_store="packed").frontier_store == "packed"
        assert (
            EngineConfig(frontier_store=PackedFrontier).frontier_store
            is PackedFrontier
        )

    def test_custom_store_registrable(self):
        @register_frontier_store("counting")
        class CountingFrontier(DictFrontier):
            name = "counting"
            puts = 0

            def put(self, mask, entry):
                type(self).puts += 1
                super().put(mask, entry)

        try:
            tt = TruthTable.random(4, seed=4)
            result = run_fs(tt, frontier_store="counting")
            assert result.mincost == run_fs(tt, frontier_store="dict").mincost
            assert CountingFrontier.puts > 0
            assert isinstance(
                create_frontier_store("counting"), CountingFrontier
            )
        finally:
            del frontier_module._STORES["counting"]

    def test_create_from_class(self):
        assert isinstance(create_frontier_store(PackedFrontier),
                          PackedFrontier)
        with pytest.raises(ValueError):
            create_frontier_store(object)


# ----------------------------------------------------------------------
# store round-trip semantics
# ----------------------------------------------------------------------

class TestPackedRoundTrip:
    def test_full_states_reconstruct_exactly(self):
        store = PackedFrontier()
        s1 = make_state(0b0001, (0,), 3, [0, 1, 2, 3, 4, 5, 6, 7])
        s2 = make_state(0b0010, (1,), 2, [7, 6, 5, 4, 3, 2, 1, 0])
        store.put(0b0001, s1)
        store.put(0b0010, s2)
        assert len(store) == 2
        assert 0b0001 in store and 0b0100 not in store
        assert store.masks() == [0b0001, 0b0010]
        assert store.min_mincost() == 2
        got = store.get(0b0001)
        assert isinstance(got, FSState)
        assert (got.n, got.mask, got.pi, got.mincost) == (4, 0b0001, (0,), 3)
        assert got.num_terminals == 2 and got.num_roots == 1
        np.testing.assert_array_equal(got.table, s1.table)
        np.testing.assert_array_equal(store.get(0b0010).table, s2.table)
        assert store.get(0b1000) is None

    def test_skeletons_reconstruct_exactly(self):
        store = PackedFrontier()
        store.put(0b011, Skeleton(pi=(0, 1), mincost=5))
        store.put(0b101, Skeleton(pi=(2, 0), mincost=4))
        assert store.get(0b011) == Skeleton(pi=(0, 1), mincost=5)
        assert store.get(0b101) == Skeleton(pi=(2, 0), mincost=4)
        assert store.min_mincost() == 4

    def test_insertion_order_survives_entry_dict(self):
        store = PackedFrontier()
        masks = [0b100, 0b001, 0b010]
        for m in masks:
            store.put(m, make_state(m, (m.bit_length() - 1,), 1, [0, 1]))
        assert list(store.to_entry_dict()) == masks
        assert [m for m, _ in store.items()] == masks

    def test_width_is_insertion_order_independent(self):
        # The packed width must converge on bit_length(layer max) no
        # matter the arrival order — that is what makes nbytes() (and so
        # budget aborts) deterministic across backends and job counts.
        wide = make_state(0b01, (0,), 1, [0, 1000, 2, 3])
        narrow = make_state(0b10, (1,), 1, [0, 1, 2, 3])
        a = PackedFrontier()
        a.put(0b01, wide)
        a.put(0b10, narrow)
        b = PackedFrontier()
        b.put(0b10, narrow)
        b.put(0b01, wide)
        assert a._bits == b._bits == 10
        assert a.nbytes() == b.nbytes()
        np.testing.assert_array_equal(a.get(0b10).table, narrow.table)
        np.testing.assert_array_equal(b.get(0b01).table, wide.table)

    def test_layer_homogeneity_enforced(self):
        store = PackedFrontier()
        store.put(0b01, make_state(0b01, (0,), 1, [0, 1, 2, 3]))
        with pytest.raises(ValueError, match="homogeneous"):
            store.put(0b10, make_state(0b10, (1,), 1, [0, 1]))

    def test_n_over_255_rejected(self):
        # FSState validation forbids building a (2^299)-cell table, so
        # exercise the guard at the metadata-adoption seam directly.
        store = PackedFrontier()
        with pytest.raises(ValueError, match="255"):
            store._adopt_meta("full", 300, 2, 1, 0, 1, 4)

    def test_node_tracking_side_list(self):
        store = PackedFrontier()
        nodes = {2: (0, 1, 0)}
        store.put(0b1, make_state(0b1, (0,), 1, [0, 1, 2, 2], nodes=nodes))
        assert store.get(0b1).nodes == nodes
        assert store.batchable() is False
        assert store.ship_slice([0b1]) is None
        assert store.checkpoint_payload() is None

    def test_ship_slice_and_absorb_round_trip(self):
        src = PackedFrontier()
        states = {}
        for m in (0b001, 0b010, 0b100):
            states[m] = make_state(m, (m.bit_length() - 1,), m, [m, 0, 5, 1])
            src.put(m, states[m])
        blob = src.ship_slice([0b100, 0b001])
        assert blob.count == 2
        assert blob.nbytes == (len(blob.masks) + len(blob.mincosts)
                               + len(blob.pis) + len(blob.tables))
        dst = PackedFrontier()
        dst.absorb({}, blob)
        assert dst.masks() == [0b100, 0b001]
        for m in (0b100, 0b001):
            np.testing.assert_array_equal(dst.get(m).table, states[m].table)
        # Absorbing a narrower slice into a wider store re-encodes it.
        dst.put(0b010, make_state(0b010, (1,), 9, [0, 70000, 0, 0]))
        np.testing.assert_array_equal(dst.get(0b001).table, states[0b001].table)

    def test_base_overlay_joins_base_and_slice(self):
        base = make_state(0, (), 0, list(range(64)))
        inner = PackedFrontier()
        inner.put(0b1, make_state(0b1, (0,), 1, list(range(32))))
        view = BaseOverlay(base, inner)
        assert view.get(0) is base
        np.testing.assert_array_equal(view.get(0b1).table, np.arange(32))
        table, mincost, pi, mask = view.prev_data(0)
        assert mincost == 0 and pi == () and mask == 0
        assert view.prev_data(0b10) is None


class TestCodec:
    @pytest.mark.parametrize("bits", [1, 7, 8, 9, 16, 33])
    def test_encode_decode_exact(self, bits):
        rng = np.random.default_rng(bits)
        values = rng.integers(0, 1 << bits, size=37, dtype=np.int64)
        blob = _encode_cells(values, bits)
        assert len(blob) == _row_bytes(37, bits)
        np.testing.assert_array_equal(
            _decode_cells(blob, bits, 37), values
        )

    def test_stdlib_codec_matches_numpy(self, monkeypatch):
        values = np.array([0, 1, 511, 300, 7, 255], dtype=np.int64)
        numpy_blob = _encode_cells(values, 9)
        monkeypatch.setattr(frontier_module, "_USE_NUMPY", False)
        stdlib_blob = _encode_cells(values, 9)
        assert stdlib_blob == numpy_blob
        decoded = _decode_cells(stdlib_blob, 9, len(values))
        np.testing.assert_array_equal(np.asarray(decoded), values)

    def test_stdlib_store_full_run_parity(self, monkeypatch):
        table = TruthTable.random(6, seed=11)
        want = run_fs(table, frontier_store="dict")
        monkeypatch.setattr(frontier_module, "_USE_NUMPY", False)
        got = run_fs(table, frontier_store="packed")
        assert (got.order, got.mincost) == (want.order, want.mincost)
        assert got.counters == want.counters


# ----------------------------------------------------------------------
# byte accounting
# ----------------------------------------------------------------------

class TestByteAccounting:
    def test_packed_nbytes_is_exact(self):
        store = PackedFrontier()
        # Four 8-cell tables whose max value is 300 -> 9 bits per cell,
        # ceil(8 * 9 / 8) = 9 table bytes per entry; masks and mincosts
        # are 8 bytes each and the chain is one byte per placed variable.
        for m in (0b0011, 0b0101, 0b0110, 0b1010):
            store.put(m, make_state(m, tuple(range(2)), 1,
                                    [300, 0, 1, 2, 3, 4, 5, 6]))
        expected = 4 * (8 + 8 + 2 + 9)
        assert store.nbytes() == expected
        # frontier_nbytes delegates to the store's exact figure.
        assert frontier_nbytes(store) == expected

    def test_dict_nbytes_is_documented_estimate(self):
        entries = {
            0b01: make_state(0b01, (0,), 1, [0, 1, 2, 3]),
            0b10: make_state(0b10, (1,), 1, [3, 2, 1, 0]),
        }
        store = DictFrontier()
        store.extend(entries)
        expected = sum(
            e.table.nbytes + STATE_OVERHEAD_BYTES for e in entries.values()
        )
        assert store.nbytes() == expected
        assert frontier_nbytes(store) == expected
        assert frontier_nbytes(entries) == expected

    def test_packed_beats_dict_several_fold_in_a_real_sweep(self):
        from repro.observability import Profiler

        table = TruthTable.random(10, seed=5)
        peaks = {}
        for store in ("dict", "packed"):
            profiler = Profiler()
            run_fs(table, frontier_store=store, profiler=profiler)
            peaks[store] = profiler.peak_frontier_bytes
        assert peaks["packed"] * 2 <= peaks["dict"]

    def test_budget_abort_layer_is_backend_independent(self, process_pool):
        table = TruthTable.random(7, seed=3)
        aborts = []
        for backend, jobs in (("serial", 1), ("thread", 4),
                              (process_pool, 4)):
            with pytest.raises(BudgetExceeded) as info:
                run_fs(table, backend=backend, jobs=jobs,
                       frontier_store="packed",
                       budget=Budget(max_frontier_bytes=600))
            aborts.append(
                (info.value.reason, info.value.layers_completed,
                 info.value.where)
            )
        assert aborts[0][0] == "frontier_bytes"
        assert aborts.count(aborts[0]) == len(aborts)


# ----------------------------------------------------------------------
# bit-identical parity matrix: store x kernel x backend x jobs x policy
# ----------------------------------------------------------------------

class TestParityMatrix:
    TABLE = TruthTable.random(6, seed=13)

    _REFERENCES = {}

    @classmethod
    def reference(cls, frontier):
        """Dict-store serial jobs=1 baseline, per frontier policy."""
        if frontier not in cls._REFERENCES:
            counters = OperationCounters()
            result = run_fs(cls.TABLE, frontier=frontier, counters=counters,
                            frontier_store="dict", backend="serial", jobs=1)
            cls._REFERENCES[frontier] = (
                result.order, result.mincost, paper_counters(counters)
            )
        return cls._REFERENCES[frontier]

    @pytest.mark.parametrize("frontier", ["full", "mincost"])
    @pytest.mark.parametrize("spec", [
        ("serial", 1), ("thread", 1), ("thread", 4), ("process", 4),
    ], ids=lambda s: f"{s[0]}-j{s[1]}")
    def test_packed_matches_dict_reference(self, spec, frontier,
                                           process_pool):
        backend, jobs = spec
        if backend == "process":
            backend = process_pool
        counters = OperationCounters()
        result = run_fs(self.TABLE, frontier=frontier, counters=counters,
                        frontier_store="packed", backend=backend, jobs=jobs)
        order, mincost, snap = self.reference(frontier)
        assert result.order == order
        assert result.mincost == mincost
        assert paper_counters(counters) == snap

    @pytest.mark.parametrize("rule", [ReductionRule.BDD, ReductionRule.ZDD,
                                      ReductionRule.CBDD])
    def test_python_kernel_parity_per_rule(self, rule):
        results = {}
        for store in ("dict", "packed"):
            for engine in ("numpy", "python"):
                counters = OperationCounters()
                result = run_fs(self.TABLE, rule=rule, engine=engine,
                                frontier_store=store, counters=counters)
                results[(store, engine)] = (
                    result.order, result.mincost, counters.snapshot()
                )
        assert len(set(map(str, results.values()))) == 1

    def test_shared_and_constrained_parity(self):
        tables = [TruthTable.random(5, seed=s) for s in (1, 2)]
        for store in ("dict", "packed"):
            shared = run_fs_shared(tables, frontier_store=store)
            assert shared.mincost == run_fs_shared(tables).mincost
            assert shared.order == run_fs_shared(tables).order
        precedence = [(0, 3)]
        want = run_fs_constrained(self.TABLE, precedence)
        got = run_fs_constrained(self.TABLE, precedence,
                                 frontier_store="packed")
        assert (got.order, got.mincost) == (want.order, want.mincost)
        assert got.counters == want.counters

    def test_solve_front_door_accepts_store(self):
        from repro import solve

        a = solve(self.TABLE, frontier_store="dict")
        b = solve(self.TABLE, frontier_store="packed")
        assert (a.order, a.mincost) == (b.order, b.mincost)


# ----------------------------------------------------------------------
# batch kernel guard rails
# ----------------------------------------------------------------------

class TestBatchKernel:
    def test_declines_non_batchable_previous(self):
        base = make_state(0, (), 0, list(range(8)))
        assert batch_sweep_chunk(
            [0b1], {0: base}, base, ReductionRule.BDD, True,
            OperationCounters(),
        ) is None

    def test_declines_node_tracking(self):
        base = make_state(0, (), 0, list(range(8)),
                          nodes={2: (0, 1, 0)})
        prev = PackedFrontier()
        assert batch_sweep_chunk(
            [0b1], BaseOverlay(base, prev), base, ReductionRule.BDD, True,
            OperationCounters(),
        ) is None

    def test_python_kernel_never_uses_batch_path(self, monkeypatch):
        # The batch path restates the numpy compact(); the python kernel
        # must keep running its executable-specification scalar loop.
        calls = []
        original = frontier_module.batch_sweep_chunk

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        import repro.core.executor as executor_module

        monkeypatch.setattr(executor_module, "batch_sweep_chunk", spy)
        run_fs(TruthTable.random(4, seed=2), engine="python",
               frontier_store="packed")
        assert calls == []
        run_fs(TruthTable.random(4, seed=2), engine="numpy",
               frontier_store="packed")
        assert calls != []


# ----------------------------------------------------------------------
# checkpoint round-trips, including cross-format resume
# ----------------------------------------------------------------------

class TestCheckpointRoundTrip:
    TABLE = TruthTable.random(6, seed=21)

    def crash_then_resume(self, tmp_path, save_store, resume_store, k=3):
        clean = run_fs(self.TABLE, counters=OperationCounters())
        ckpt = tmp_path / f"{save_store}-to-{resume_store}"
        with pytest.raises(InjectedFault):
            run_fs(self.TABLE, counters=OperationCounters(),
                   frontier_store=save_store, checkpoint_dir=str(ckpt),
                   fault_injector=FaultInjector(kill_after_layer=k))
        resumed = run_fs(self.TABLE, counters=OperationCounters(),
                         frontier_store=resume_store,
                         checkpoint_dir=str(ckpt), resume=True)
        assert resumed.order == clean.order
        assert resumed.mincost == clean.mincost
        assert resumed.counters == clean.counters

    def test_packed_to_packed(self, tmp_path):
        self.crash_then_resume(tmp_path, "packed", "packed")

    def test_dict_checkpoint_resumes_under_packed(self, tmp_path):
        # Old-format checkpoints (per-entry "entries" payload) must load
        # under the packed store: the fingerprint excludes the store.
        self.crash_then_resume(tmp_path, "dict", "packed")

    def test_packed_checkpoint_resumes_under_dict(self, tmp_path):
        self.crash_then_resume(tmp_path, "packed", "dict")

    def test_packed_checkpoint_uses_column_payload(self, tmp_path):
        import json

        ckpt = tmp_path / "cols"
        run_fs(self.TABLE, frontier_store="packed",
               checkpoint_dir=str(ckpt))
        files = sorted(ckpt.glob("ckpt_*_layer_*.json"))
        assert files
        with open(files[0]) as handle:
            payload = json.load(handle)["payload"]
        assert "entries_packed" in payload
        assert "entries" not in payload
        assert payload["entries_packed"]["count"] > 0

    def test_payload_integrity_guard(self):
        store = PackedFrontier()
        store.put(0b1, make_state(0b1, (0,), 1, [0, 1, 2, 3]))
        payload = store.checkpoint_payload()
        decoded = PackedFrontier.decode_checkpoint_payload(payload)
        np.testing.assert_array_equal(
            decoded[0b1].table, store.get(0b1).table
        )
        tampered = dict(payload, mask_popcount=payload["mask_popcount"] + 1)
        with pytest.raises(ValueError, match="popcount"):
            PackedFrontier.decode_checkpoint_payload(tampered)
        with pytest.raises(ValueError, match="entries"):
            PackedFrontier.decode_checkpoint_payload(
                dict(payload, count=99)
            )
        with pytest.raises(ValueError, match="width"):
            PackedFrontier.decode_checkpoint_payload(
                dict(payload, bits=0)
            )

    def test_skeleton_layers_checkpoint_packed(self, tmp_path):
        ckpt = tmp_path / "skel"
        clean = run_fs(self.TABLE, counters=OperationCounters(),
                       frontier="mincost")
        with pytest.raises(InjectedFault):
            run_fs(self.TABLE, counters=OperationCounters(),
                   frontier="mincost", frontier_store="packed",
                   checkpoint_dir=str(ckpt),
                   fault_injector=FaultInjector(kill_after_layer=4))
        resumed = run_fs(self.TABLE, counters=OperationCounters(),
                         frontier="mincost", frontier_store="packed",
                         checkpoint_dir=str(ckpt), resume=True)
        assert resumed.order == clean.order
        assert resumed.counters == clean.counters


# ----------------------------------------------------------------------
# store-aware shipping (process backend transport accounting)
# ----------------------------------------------------------------------

class TestShipping:
    def test_packed_store_shrinks_bytes_shipped(self, process_pool):
        table = TruthTable.random(7, seed=9)
        shipped = {}
        for store in ("dict", "packed"):
            counters = OperationCounters()
            run_fs(table, backend=process_pool, jobs=4,
                   frontier_store=store, counters=counters)
            shipped[store] = counters.snapshot()["bytes_shipped"]
        assert 0 < shipped["packed"] * 2 <= shipped["dict"]
