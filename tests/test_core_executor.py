"""Tests for the pluggable execution backends (:mod:`repro.core.executor`).

The backend redesign's contract: ``serial``, ``thread`` and ``process``
backends run the *same* chunks through the *same* kernels and merge in
the *same* fixed order, so results AND operation counters are
bit-identical for every ``backend x jobs x FrontierPolicy`` cell.  The
one sanctioned exception: the process backend's ``tasks_shipped`` /
``bytes_shipped`` transport tallies, which in-process backends never
emit.  Budgets (deadline + cooperative cancellation, including SIGINT)
must propagate across the process boundary, and checkpoint/resume must
behave identically under every backend.

Process-backed tests share one module-scoped ``ProcessBackend`` so the
interpreter-spawn cost is paid once, not per test.
"""

import os
import signal
import threading
import warnings

import pytest

from repro.analysis.counters import OperationCounters
from repro.core import (
    Budget,
    EngineConfig,
    ExecutorBackend,
    FrontierPolicy,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    create_backend,
    get_backend,
    handle_signals,
    initial_state,
    register_backend,
    run_fs,
    run_fs_constrained,
    run_fs_shared,
    run_fs_star,
    window_sweep,
)
from repro.core import executor as executor_module
from repro.core.executor import resolve_backend, shared_backend, split_chunks
from repro.errors import BudgetExceeded
from repro.truth_table import TruthTable


def paper_counters(counters):
    """Counter snapshot minus the process backend's transport tallies.

    ``tasks_shipped`` / ``bytes_shipped`` are coordinator-side transport
    accounting that in-process backends never emit; everything else must
    be bit-identical across backends.
    """
    snap = counters.snapshot()
    snap.pop("tasks_shipped", None)
    snap.pop("bytes_shipped", None)
    return snap


@pytest.fixture(scope="module")
def process_pool():
    """One spawned pool for the whole module (spawn cost is seconds)."""
    backend = ProcessBackend(jobs=4)
    yield backend
    backend.close()


# ----------------------------------------------------------------------
# registry + config plumbing
# ----------------------------------------------------------------------

class TestBackendRegistry:
    def test_builtins_registered(self):
        assert {"serial", "thread", "process"} <= set(available_backends())

    def test_get_backend_resolves_classes(self):
        assert get_backend("serial") is SerialBackend
        assert get_backend("thread") is ThreadBackend
        assert get_backend("process") is ProcessBackend

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match="serial"):
            get_backend("gpu")
        with pytest.raises(ValueError):
            run_fs(TruthTable.random(2, seed=0), backend="gpu")

    def test_config_validates_backend(self):
        with pytest.raises(ValueError):
            EngineConfig(backend="nope")
        with pytest.raises(ValueError):
            EngineConfig(backend=42)
        assert EngineConfig(backend="serial").backend == "serial"
        inst = SerialBackend()
        assert EngineConfig(backend=inst).backend is inst

    def test_config_is_keyword_only(self):
        with pytest.raises(TypeError):
            EngineConfig("numpy")  # positional args no longer accepted

    def test_custom_backend_registrable(self):
        @register_backend("tracing")
        class TracingBackend(SerialBackend):
            name = "tracing"
            calls = []

            def run_layer(self, layer, chunks, previous, retain_full):
                type(self).calls.append(layer)
                return super().run_layer(layer, chunks, previous, retain_full)

        try:
            tt = TruthTable.random(4, seed=4)
            result = run_fs(tt, backend="tracing")
            assert result.mincost == run_fs(tt, backend="serial").mincost
            assert TracingBackend.calls == [1, 2, 3, 4]
            assert isinstance(create_backend("tracing"), TracingBackend)
        finally:
            del executor_module._BACKENDS["tracing"]

    def test_resolve_backend_ownership(self):
        owned, engine_owns = resolve_backend("serial")
        assert isinstance(owned, SerialBackend) and engine_owns
        inst = ThreadBackend(jobs=2)
        try:
            same, engine_owns = resolve_backend(inst)
            assert same is inst and not engine_owns
        finally:
            inst.close()

    def test_shared_backend_pins_one_instance(self):
        config = EngineConfig(backend="serial")
        with shared_backend(config) as pinned:
            assert isinstance(pinned.backend, SerialBackend)
        # None and instance-carrying configs pass through untouched.
        with shared_backend(None) as passthrough:
            assert passthrough is None

    def test_deprecated_fs_engine_shim_removed(self):
        # The PR-5 deprecation cycle is over: the shim is gone, and the
        # supported spelling is repro.core.engine.get_kernel.
        from repro.core import fs as fs_module

        assert not hasattr(fs_module, "_engine")


# ----------------------------------------------------------------------
# bit-identical parity matrix: backend x jobs x frontier
# ----------------------------------------------------------------------

class TestParityMatrix:
    TABLE = TruthTable.random(6, seed=13)

    _REFERENCES = {}

    @classmethod
    def reference(cls, frontier):
        """Serial jobs=1 baseline, per frontier policy (replay under the
        mincost-only frontier adds ``recompute_*`` extras that every
        backend must reproduce identically)."""
        if frontier not in cls._REFERENCES:
            counters = OperationCounters()
            result = run_fs(cls.TABLE, counters=counters, backend="serial",
                            jobs=1, frontier=frontier)
            cls._REFERENCES[frontier] = (result, counters.snapshot())
        return cls._REFERENCES[frontier]

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("frontier",
                             [FrontierPolicy.FULL, FrontierPolicy.MINCOST_ONLY])
    def test_in_process_backends_bit_identical(self, backend, jobs,
                                               frontier):
        ref, ref_counters = self.reference(frontier)
        counters = OperationCounters()
        result = run_fs(self.TABLE, counters=counters, backend=backend,
                        jobs=jobs, frontier=frontier)
        assert result.mincost == ref.mincost
        assert result.order == ref.order
        assert result.pi == ref.pi
        # In-process backends ship nothing: exact snapshot equality.
        assert counters.snapshot() == ref_counters

    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("frontier",
                             [FrontierPolicy.FULL, FrontierPolicy.MINCOST_ONLY])
    def test_process_backend_bit_identical(self, jobs, frontier,
                                           process_pool):
        ref, ref_counters = self.reference(frontier)
        backend = process_pool if jobs > 1 else "process"
        counters = OperationCounters()
        result = run_fs(self.TABLE, counters=counters, backend=backend,
                        jobs=jobs, frontier=frontier)
        assert result.mincost == ref.mincost
        assert result.order == ref.order
        assert result.pi == ref.pi
        assert paper_counters(counters) == ref_counters

    def test_process_jobs1_never_spawns(self):
        backend = ProcessBackend()
        try:
            run_fs(self.TABLE, backend=backend, jobs=1)
            assert backend._pool is None  # every layer ran inline
        finally:
            backend.close()

    def test_thread_jobs1_never_spawns(self):
        backend = ThreadBackend()
        try:
            run_fs(self.TABLE, backend=backend, jobs=1)
            assert backend._pool is None
        finally:
            backend.close()

    def test_split_chunks_shapes(self):
        masks = list(range(10))
        assert split_chunks(masks, 1) == [masks]
        chunks = split_chunks(masks, 4)
        assert [m for chunk in chunks for m in chunk] == masks
        assert len(chunks) <= 4


# ----------------------------------------------------------------------
# every DP entry point, process backend
# ----------------------------------------------------------------------

class TestProcessBackendAcrossEntryPoints:
    def test_shared(self, process_pool):
        tables = [TruthTable.random(5, seed=s) for s in (1, 2)]
        serial = run_fs_shared(tables, counters=OperationCounters(),
                               backend="serial")
        counters = OperationCounters()
        par = run_fs_shared(tables, counters=counters,
                            backend=process_pool, jobs=4)
        assert par.mincost == serial.mincost
        assert par.order == serial.order
        assert paper_counters(counters) == paper_counters(serial.counters)

    def test_constrained(self, process_pool):
        table = TruthTable.random(6, seed=3)
        precedence = [(0, 2), (1, 3)]
        serial = run_fs_constrained(table, precedence, backend="serial")
        par = run_fs_constrained(table, precedence,
                                 backend=process_pool, jobs=4)
        assert par.mincost == serial.mincost
        assert par.order == serial.order
        assert (paper_counters(par.counters)
                == paper_counters(serial.counters))

    def test_window(self, process_pool):
        table = TruthTable.random(7, seed=7)
        serial = window_sweep(table, width=4,
                              config=EngineConfig(backend="serial"))
        par = window_sweep(table, width=4,
                           config=EngineConfig(backend=process_pool, jobs=4))
        assert par.size == serial.size
        assert par.order == serial.order

    def test_fs_star(self, process_pool):
        base = initial_state(TruthTable.random(6, seed=11))
        j_mask = 0b111111
        serial_counters = OperationCounters()
        serial = run_fs_star(base, j_mask, counters=serial_counters,
                             config=EngineConfig(backend="serial"))
        par_counters = OperationCounters()
        par = run_fs_star(base, j_mask, counters=par_counters,
                          config=EngineConfig(backend=process_pool, jobs=4))
        assert par.mincost == serial.mincost
        assert par.pi == serial.pi
        assert paper_counters(par_counters) == paper_counters(serial_counters)


# ----------------------------------------------------------------------
# budget propagation across the process boundary
# ----------------------------------------------------------------------

class TestProcessBudget:
    def test_deadline_aborts_at_committed_boundary(self, process_pool,
                                                   tmp_path):
        table = TruthTable.random(12, seed=42)
        with pytest.raises(BudgetExceeded) as info:
            run_fs(table, backend=process_pool, jobs=4,
                   checkpoint_dir=str(tmp_path / "ck"),
                   budget=Budget(deadline=0.05))
        exc = info.value
        assert exc.reason == "deadline"
        assert exc.layers_completed is not None and exc.layers_completed >= 0

    def test_pre_cancelled_budget_aborts_promptly(self, process_pool):
        budget = Budget()
        budget.cancel.set()
        with pytest.raises(BudgetExceeded) as info:
            run_fs(TruthTable.random(8, seed=5), backend=process_pool,
                   jobs=4, budget=budget)
        assert info.value.reason == "cancelled"

    def test_pool_survives_abort(self, process_pool):
        """The shared pool stays usable after a budget abort."""
        result = run_fs(TruthTable.random(6, seed=13),
                        backend=process_pool, jobs=4)
        assert result.mincost == run_fs(TruthTable.random(6, seed=13),
                                        backend="serial").mincost

    def test_sigint_routed_to_coordinator_not_workers(self, process_pool):
        """SIGINT cancels cooperatively; workers ignore the signal."""
        table = TruthTable.random(11, seed=9)
        budget = Budget()
        with handle_signals(budget) as installed:
            if not installed:
                pytest.skip("not on the main thread")
            timer = threading.Timer(
                0.3, os.kill, args=(os.getpid(), signal.SIGINT))
            timer.start()
            try:
                with pytest.raises(BudgetExceeded) as info:
                    run_fs(table, backend=process_pool, jobs=4,
                           budget=budget)
            finally:
                timer.cancel()
        assert info.value.reason == "cancelled"

    def test_checkpoint_resume_bit_identical(self, process_pool, tmp_path):
        table = TruthTable.random(10, seed=21)
        ckpt = str(tmp_path / "resume")
        with pytest.raises(BudgetExceeded):
            run_fs(table, counters=OperationCounters(),
                   backend=process_pool, jobs=4, checkpoint_dir=ckpt,
                   budget=Budget(deadline=0.05))
        clean = run_fs(table, counters=OperationCounters(), backend="serial")
        resumed_counters = OperationCounters()
        resumed = run_fs(table, counters=resumed_counters,
                         backend=process_pool, jobs=4,
                         checkpoint_dir=ckpt, resume=True)
        assert resumed.mincost == clean.mincost
        assert resumed.order == clean.order
        assert resumed.pi == clean.pi
        # Transport tallies differ (the resumed run re-ships the base
        # table); every paper-facing counter must match exactly.
        assert paper_counters(resumed_counters) == paper_counters(
            clean.counters)


# ----------------------------------------------------------------------
# observability: transport phases + tallies
# ----------------------------------------------------------------------

class TestTransportObservability:
    def test_process_backend_records_ipc_phases_and_tallies(
            self, process_pool):
        from repro.observability import Profiler

        profiler = Profiler()
        counters = OperationCounters()
        run_fs(TruthTable.random(6, seed=13), counters=counters,
               backend=process_pool, jobs=4, profiler=profiler)
        assert "ipc_submit" in profiler.phases
        assert "ipc_merge" in profiler.phases
        assert counters.extra["tasks_shipped"] > 0
        assert counters.extra["bytes_shipped"] > 0

    def test_in_process_backends_ship_nothing(self):
        counters = OperationCounters()
        run_fs(TruthTable.random(6, seed=13), counters=counters,
               backend="thread", jobs=4)
        assert "tasks_shipped" not in counters.extra
        assert "bytes_shipped" not in counters.extra


class TestSweepMutex:
    """One warm backend instance serves many sweeps — but one at a time.

    Before the mutex, concurrent sweeps silently overwrote each other's
    ``_context``/``_kernel``, corrupting both results; the serve daemon's
    request workers are exactly that shape."""

    def test_concurrent_sweeps_on_one_backend_stay_correct(self):
        backend = ThreadBackend(jobs=2)
        tables = [TruthTable.random(6, seed=s) for s in (61, 62, 63, 64)]
        expected = [run_fs(tt).mincost for tt in tables]
        results = [None] * len(tables)
        errors = []

        def worker(index):
            try:
                results[index] = run_fs(
                    tables[index], backend=backend, jobs=2
                ).mincost
            except Exception as exc:  # pragma: no cover - the old bug
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(tables))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            backend.close()
        assert errors == []
        assert results == expected

    def test_nested_sweep_on_same_backend_raises(self):
        from repro.errors import OrderingError

        backend = SerialBackend()
        tt = TruthTable.random(4, seed=65)
        try:
            run_fs(tt, backend=backend)  # warm it; lock must be released
            context = _sweep_context_for(tt)
            backend.begin_sweep(context)
            try:
                with pytest.raises(OrderingError, match="mid-sweep"):
                    backend.begin_sweep(context)
            finally:
                backend.end_sweep()
            # The lock released cleanly: the backend is reusable.
            assert run_fs(tt, backend=backend).mincost == run_fs(tt).mincost
        finally:
            backend.close()

    def test_end_sweep_without_begin_is_harmless(self):
        backend = SerialBackend()
        backend.end_sweep()  # ProcessBackend.close() does this on shutdown
        backend.close()


def _sweep_context_for(table):
    """A minimal valid SweepContext for handshake-level tests."""
    from repro.core.executor import SweepContext
    from repro.core.spec import ReductionRule

    return SweepContext(
        base=initial_state(table, ReductionRule.BDD),
        kernel="numpy",
        rule=ReductionRule.BDD,
        jobs=1,
        counters=OperationCounters(),
    )
