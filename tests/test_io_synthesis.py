"""Unit tests for BDD-to-netlist synthesis and Verilog export."""

import random

import pytest

from repro.core import (
    ReductionRule,
    build_diagram,
    reconstruct_minimum_diagram,
    run_fs,
)
from repro.errors import DimensionError
from repro.expr import Circuit, to_truth_table
from repro.io import (
    circuit_to_verilog,
    diagram_to_mux_circuit,
    diagram_to_verilog,
    mux_cost,
)
from repro.truth_table import TruthTable


class TestMuxSynthesis:
    @pytest.mark.parametrize("seed", range(8))
    def test_netlist_computes_the_function(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 5)
        table = TruthTable.random(n, seed=seed)
        diagram = reconstruct_minimum_diagram(table, run_fs(table))
        circuit = diagram_to_mux_circuit(diagram)
        assert to_truth_table(circuit, n) == table

    def test_mux_cost_is_internal_node_count(self):
        table = TruthTable.random(4, seed=10)
        diagram = build_diagram(table, [0, 1, 2, 3])
        assert mux_cost(diagram) == diagram.mincost

    def test_optimal_ordering_minimizes_mux_count(self):
        from repro.functions import achilles_bad_order, achilles_heel

        table = achilles_heel(3)
        good = build_diagram(table, list(range(6)))
        bad = build_diagram(table, achilles_bad_order(3))
        assert mux_cost(good) == 6
        assert mux_cost(bad) == 14

    def test_constant_diagram(self):
        diagram = build_diagram(TruthTable.constant(2, 1), [0, 1])
        circuit = diagram_to_mux_circuit(diagram)
        assert to_truth_table(circuit, 2) == TruthTable.constant(2, 1)

    def test_only_bdd_rule(self):
        table = TruthTable.random(3, seed=11)
        diagram = build_diagram(table, [0, 1, 2], ReductionRule.ZDD)
        with pytest.raises(DimensionError):
            diagram_to_mux_circuit(diagram)


class TestVerilog:
    def test_module_structure(self):
        circuit = Circuit(inputs=["a", "b"], output="y")
        circuit.add_gate("and", "t", ["a", "b"])
        circuit.add_gate("not", "y", ["t"])
        text = circuit_to_verilog(circuit, module_name="nandgate")
        assert text.startswith("module nandgate (a, b, y);")
        assert "input a, b;" in text
        assert "output y;" in text
        assert "wire t;" in text
        assert "and g0 (t, a, b);" in text
        assert "not g1 (y, t);" in text
        assert text.rstrip().endswith("endmodule")

    def test_buf_becomes_assign(self):
        circuit = Circuit(inputs=["a"], output="y")
        circuit.add_gate("buf", "y", ["a"])
        assert "assign y = a;" in circuit_to_verilog(circuit)

    def test_name_sanitization(self):
        circuit = Circuit(inputs=["a.1"], output="out-x")
        circuit.add_gate("not", "out-x", ["a.1"])
        text = circuit_to_verilog(circuit)
        assert "a_1" in text and "out_x" in text
        assert "." not in text.split("module", 1)[1].split(";")[0]

    def test_one_call_synthesis(self):
        table = TruthTable.from_callable(3, lambda a, b, c: (a & b) ^ c)
        diagram = reconstruct_minimum_diagram(table, run_fs(table))
        text = diagram_to_verilog(diagram)
        assert text.startswith("module minimum_obdd")
        # one and-pair + or per mux, sanity on gate count scale
        assert text.count("and g") >= 2 * diagram.mincost

    def test_gate_count_tracks_nodes(self):
        # Each node contributes exactly 2 ANDs + 1 OR; inverters and rails
        # are shared.
        table = TruthTable.random(4, seed=12)
        diagram = reconstruct_minimum_diagram(table, run_fs(table))
        circuit = diagram_to_mux_circuit(diagram)
        ands = sum(1 for g in circuit.gates if g.kind == "and")
        ors = sum(1 for g in circuit.gates if g.kind == "or")
        assert ands == 2 * diagram.mincost + 1  # + const0 rail
        assert ors == diagram.mincost + 1       # + const1 rail
