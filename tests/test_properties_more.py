"""Property-based tests (hypothesis), third wave: influence, synthesis,
sensitivity, certificates, and the extended ZDD algebra."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.influence import influence_order, influences, total_influence
from repro.analysis.sensitivity import ordering_sensitivity
from repro.analysis.symmetry import symmetry_classes
from repro.bdd import BDD, ZDD
from repro.core import run_fs
from repro.core.certificate import extract_certificate, verify_achievability
from repro.core.reconstruct import reconstruct_minimum_diagram
from repro.expr import to_truth_table
from repro.io.synthesis import diagram_to_mux_circuit
from repro.truth_table import TruthTable, count_subfunctions

small_tables = st.integers(1, 4).flatmap(
    lambda n: st.lists(
        st.integers(0, 1), min_size=1 << n, max_size=1 << n
    ).map(lambda values: TruthTable(n, values))
)

families = st.integers(1, 4).flatmap(
    lambda n: st.lists(
        st.sets(st.integers(0, n - 1)), min_size=0, max_size=6
    ).map(lambda fam: (n, [set(s) for s in fam]))
)

common = settings(
    max_examples=40, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# influence
# ----------------------------------------------------------------------
@given(small_tables)
@common
def test_influence_zero_iff_dead(tt):
    values = influences(tt)
    support = set(tt.support())
    for var, value in enumerate(values):
        assert (value == 0.0) == (var not in support)


@given(small_tables)
@common
def test_influence_invariant_under_negation(tt):
    assert influences(tt) == influences(~tt)


@given(small_tables)
@common
def test_total_influence_at_most_n(tt):
    assert 0.0 <= total_influence(tt) <= tt.n


@given(small_tables)
@common
def test_influence_order_is_permutation_and_valid(tt):
    order = influence_order(tt)
    assert sorted(order) == list(range(tt.n))
    cost = sum(count_subfunctions(tt, order))
    assert cost >= run_fs(tt).mincost


# ----------------------------------------------------------------------
# synthesis
# ----------------------------------------------------------------------
@given(small_tables)
@common
def test_synthesized_netlist_equals_function(tt):
    diagram = reconstruct_minimum_diagram(tt, run_fs(tt))
    circuit = diagram_to_mux_circuit(diagram)
    assert to_truth_table(circuit, tt.n) == tt


# ----------------------------------------------------------------------
# sensitivity + symmetry interplay
# ----------------------------------------------------------------------
@given(small_tables)
@common
def test_sensitivity_minimum_is_fs_optimum(tt):
    report = ordering_sensitivity(tt)
    assert report.minimum == run_fs(tt).mincost
    assert report.minimum <= report.median <= report.maximum


@given(small_tables)
@common
def test_single_symmetry_class_implies_insensitive(tt):
    classes = symmetry_classes(tt)
    if len(classes) == 1:
        assert ordering_sensitivity(tt).spread == 1.0


# ----------------------------------------------------------------------
# certificates
# ----------------------------------------------------------------------
@given(small_tables)
@common
def test_certificates_always_achievable(tt):
    certificate = extract_certificate(run_fs(tt))
    assert verify_achievability(tt, certificate)


# ----------------------------------------------------------------------
# extended ZDD algebra
# ----------------------------------------------------------------------
@given(families)
@common
def test_maximal_is_idempotent_antichain(pair):
    n, family = pair
    manager = ZDD(n)
    root = manager.from_sets(family)
    maximal = manager.maximal(root)
    assert manager.maximal(maximal) == maximal
    members = list(manager.iter_sets(maximal))
    assert not any(a < b for a in members for b in members)


@given(families)
@common
def test_minimal_maximal_bracket_family(pair):
    n, family = pair
    manager = ZDD(n)
    root = manager.from_sets(family)
    assert manager.count(manager.maximal(root)) <= manager.count(root)
    assert manager.count(manager.minimal(root)) <= manager.count(root)
    # union of extremes is contained in the family
    extremes = manager.union(manager.maximal(root), manager.minimal(root))
    assert manager.difference(extremes, root) == manager.empty


@given(families, families)
@common
def test_nonsubsets_nonsupersets_partition_style(pair_a, pair_b):
    n = max(pair_a[0], pair_b[0])
    manager = ZDD(n)
    a = manager.from_sets(pair_a[1])
    b = manager.from_sets(pair_b[1])
    nonsub = set(manager.iter_sets(manager.nonsubsets(a, b)))
    nonsup = set(manager.iter_sets(manager.nonsupersets(a, b)))
    fam_a = set(manager.iter_sets(a))
    fam_b = set(manager.iter_sets(b))
    assert nonsub == {s for s in fam_a if not any(s <= t for t in fam_b)}
    assert nonsup == {s for s in fam_a if not any(t <= s for t in fam_b)}


# ----------------------------------------------------------------------
# manager shortest path
# ----------------------------------------------------------------------
@given(small_tables)
@common
def test_shortest_sat_minimal_weight(tt):
    manager = BDD(tt.n)
    root = manager.from_truth_table(tt)
    assignment = manager.shortest_sat(root)
    if tt.count_ones() == 0:
        assert assignment is None
    else:
        assert tt(*assignment) == 1
        assert sum(assignment) == min(
            bin(a).count("1") for a in tt.ones()
        )
