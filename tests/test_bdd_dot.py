"""Unit tests for DOT export."""

from repro.bdd import BDD, MTBDD, ZDD, diagram_to_dot, to_dot
from repro.core import ReductionRule, build_diagram
from repro.functions import achilles_heel
from repro.truth_table import TruthTable


class TestManagerDot:
    def test_bdd_dot_structure(self):
        mgr = BDD(2)
        root = mgr.from_truth_table(TruthTable(2, [0, 0, 0, 1]))
        dot = to_dot(mgr, root, name="AndGate")
        assert dot.startswith("digraph AndGate {")
        assert dot.rstrip().endswith("}")
        assert 'label="T"' in dot and 'label="F"' in dot
        assert "style=dotted" in dot and "style=solid" in dot
        assert 'label="x1"' in dot  # one-based labels by default

    def test_zero_based_labels(self):
        mgr = BDD(1)
        dot = to_dot(mgr, mgr.var(0), one_based=False)
        assert 'label="x0"' in dot

    def test_every_internal_node_has_two_edges(self):
        mgr = BDD(3)
        root = mgr.from_truth_table(TruthTable.random(3, seed=5))
        dot = to_dot(mgr, root)
        internal = sum(1 for line in dot.splitlines() if "shape=circle" in line)
        edges = sum(1 for line in dot.splitlines() if "->" in line)
        assert edges == 2 * internal

    def test_zdd_dot(self):
        z = ZDD(3)
        root = z.from_sets([{0, 2}, {1}])
        dot = to_dot(z, root)
        assert "digraph" in dot and "shape=circle" in dot

    def test_mtbdd_terminal_labels(self):
        m = MTBDD(2)
        root = m.from_truth_table(TruthTable(2, [0, 1, 2, 3]))
        dot = to_dot(m, root)
        for value in ("0", "1", "2", "3"):
            assert f'label="{value}"' in dot

    def test_rank_same_groups_levels(self):
        mgr = BDD(3)
        root = mgr.from_truth_table(TruthTable.random(3, seed=9))
        dot = to_dot(mgr, root)
        assert "rank=same" in dot


class TestDiagramDot:
    def test_reconstructed_diagram_export(self):
        table = achilles_heel(2)
        diagram = build_diagram(table, [0, 1, 2, 3])
        dot = diagram.to_dot(name="Achilles")
        assert dot.startswith("digraph Achilles {")
        assert dot.count("shape=circle") == diagram.mincost

    def test_raw_export_matches_reachable(self):
        table = TruthTable.random(4, seed=11)
        diagram = build_diagram(table, [0, 1, 2, 3], ReductionRule.BDD)
        dot = diagram_to_dot(diagram.nodes, diagram.root)
        boxes = dot.count("shape=box")
        circles = dot.count("shape=circle")
        assert boxes + circles == diagram.size
