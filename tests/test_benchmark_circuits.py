"""Unit tests for the named benchmark circuits."""

import pytest

from repro.bdd import BDD
from repro.core import run_fs
from repro.expr import compile_circuit, to_truth_table
from repro.functions import (
    NAMED_CIRCUITS,
    c17,
    full_adder_carry_chain,
    majority_gate,
    multiplexer,
    mux_tree,
    parity,
    parity_tree,
    threshold,
)


class TestC17:
    def test_shape(self):
        circuit = c17()
        assert len(circuit.inputs) == 5
        assert len(circuit.gates) == 6
        assert all(g.kind == "nand" for g in circuit.gates)

    def test_known_vectors(self):
        table = to_truth_table(c17())
        # n22 = NAND(n10, n16); all-zero inputs: n10=1, n11=1, n16=1 -> 0
        assert table(0, 0, 0, 0, 0) == 0
        # n1=1, n3=1 -> n10=0 -> n22=1 regardless of the rest
        assert table(1, 0, 1, 0, 0) == 1
        assert table(1, 1, 1, 1, 1) == 1

    def test_second_output(self):
        manager = BDD(5)
        n23 = compile_circuit(manager, c17(), output="n23")
        # all zeros: n16=1, n19=1 -> n23 = 0
        assert manager.evaluate(n23, [0, 0, 0, 0, 0]) == 0

    def test_exact_optimization(self):
        table = to_truth_table(c17())
        result = run_fs(table)
        assert result.mincost <= sum(
            1 for _ in range(5)
        ) + 5  # small circuit, small OBDD
        assert result.mincost >= 1


class TestStructuredCircuits:
    def test_majority_gate(self):
        assert to_truth_table(majority_gate()) == threshold(3, 2)

    def test_carry_chain_matches_adder_carry(self):
        from repro.functions import adder_bit

        bits = 3
        assert to_truth_table(full_adder_carry_chain(bits)) == adder_bit(bits, bits)

    def test_parity_tree(self):
        assert to_truth_table(parity_tree(8)) == parity(8)

    def test_parity_tree_odd_leaves(self):
        assert to_truth_table(parity_tree(5)) == parity(5)

    def test_mux_tree_matches_family(self):
        assert to_truth_table(mux_tree(2)) == multiplexer(2)

    def test_named_registry(self):
        for name, make in NAMED_CIRCUITS.items():
            circuit = make()
            assert circuit.num_vars >= 1, name
            table = to_truth_table(circuit)
            assert table.n == circuit.num_vars

    def test_symbolic_and_tabulated_agree(self):
        for name, make in NAMED_CIRCUITS.items():
            circuit = make()
            manager = BDD(circuit.num_vars)
            root = compile_circuit(manager, circuit)
            assert manager.to_truth_table(root) == to_truth_table(circuit), name
