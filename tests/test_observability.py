"""Tests for :mod:`repro.observability` (profiler + frontier accounting)."""

import json

import pytest

from repro.analysis.counters import OperationCounters
from repro.core import run_fs, run_fs_shared
from repro.core.fs import initial_state
from repro.observability import (
    STATE_OVERHEAD_BYTES,
    LayerProfile,
    Profiler,
    frontier_nbytes,
)
from repro.truth_table import TruthTable


class TestFrontierNbytes:
    def test_counts_table_payload_plus_overhead(self):
        tt = TruthTable.random(4, seed=1)
        state = initial_state(tt)
        frontier = {0: state}
        expected = state.table.nbytes + STATE_OVERHEAD_BYTES
        assert frontier_nbytes(frontier) == expected

    def test_skeleton_entries_cost_overhead_only(self):
        class Skeleton:
            table = None

        assert frontier_nbytes({0: Skeleton(), 1: Skeleton()}) == (
            2 * STATE_OVERHEAD_BYTES
        )


class TestProfiler:
    def test_phases_accumulate(self):
        profiler = Profiler()
        with profiler.phase("work"):
            pass
        first = profiler.phases["work"]
        with profiler.phase("work"):
            pass
        assert profiler.phases["work"] > first

    def test_record_layer_tracks_peak(self):
        profiler = Profiler()
        profiler.record_layer(1, 4, 0.1, 4, 1000)
        profiler.record_layer(2, 6, 0.2, 6, 5000)
        profiler.record_layer(3, 4, 0.1, 4, 2000)
        assert profiler.peak_frontier_bytes == 5000
        assert profiler.total_layer_seconds == pytest.approx(0.4)
        assert [layer.k for layer in profiler.layers] == [1, 2, 3]

    def test_to_dict_and_json_roundtrip(self):
        profiler = Profiler(meta={"n": 4})
        profiler.record_layer(1, 4, 0.1, 4, 1000, {"table_cells": 32})
        data = json.loads(profiler.to_json())
        assert data["meta"] == {"n": 4}
        assert data["peak_frontier_bytes"] == 1000
        assert data["layers"][0]["counters"] == {"table_cells": 32}

    def test_write(self, tmp_path):
        profiler = Profiler()
        profiler.record_layer(1, 1, 0.0, 1, 10)
        path = tmp_path / "profile.json"
        profiler.write(str(path))
        assert json.loads(path.read_text())["layers"][0]["frontier_bytes"] == 10

    def test_layer_profile_to_dict(self):
        layer = LayerProfile(2, 6, 0.5, 6, 4096, {"compactions": 12})
        data = layer.to_dict()
        assert data == {
            "k": 2,
            "subsets": 6,
            "wall_seconds": 0.5,
            "frontier_states": 6,
            "frontier_bytes": 4096,
            "counters": {"compactions": 12},
        }


class TestEngineIntegration:
    def test_run_fs_records_one_layer_per_cardinality(self):
        tt = TruthTable.random(6, seed=6)
        profiler = Profiler()
        run_fs(tt, profiler=profiler)
        assert [layer.k for layer in profiler.layers] == list(range(1, 7))
        assert [layer.subsets for layer in profiler.layers] == [
            6, 15, 20, 15, 6, 1
        ]
        assert profiler.meta["n"] == 6
        assert profiler.meta["kernel"] == "numpy"
        assert "prepare" in profiler.phases

    def test_layer_counters_are_cumulative_snapshots(self):
        from repro.analysis.complexity import fs_table_cells

        tt = TruthTable.random(5, seed=5)
        profiler = Profiler()
        run_fs(tt, profiler=profiler)
        cells = [layer.counters["table_cells"] for layer in profiler.layers]
        assert cells == sorted(cells)
        assert cells[-1] == fs_table_cells(5)

    def test_shared_run_profiles_too(self):
        tables = [TruthTable.random(4, seed=s) for s in (1, 2)]
        profiler = Profiler()
        run_fs_shared(tables, profiler=profiler)
        assert len(profiler.layers) == 4
        assert profiler.peak_frontier_bytes > 0

    def test_counters_diff_matches_layer_deltas(self):
        before = OperationCounters()
        after = OperationCounters()
        after.table_cells = 10
        after.compactions = 2
        after.add_extra("recompute_cells", 7)
        assert after.diff(before) == {
            "table_cells": 10,
            "compactions": 2,
            "recompute_cells": 7,
        }
        assert before.copy() == before
