"""Tests for the shared execution engine (:mod:`repro.core.engine`).

The engine owns the subset-cardinality sweep for every FS-family DP, so
these tests pin the properties the refactor promises: kernel registry
dispatch, bit-identical results and counters under layer parallelism,
and result invariance under the mincost-only frontier policy.
"""

import pytest

from repro.analysis.counters import OperationCounters
from repro.core import (
    EngineConfig,
    FrontierPolicy,
    ReductionRule,
    available_kernels,
    compact,
    get_kernel,
    register_kernel,
    run_fs,
    run_fs_constrained,
    run_fs_shared,
    run_layered_sweep,
    window_sweep,
)
from repro.core import engine as engine_module
from repro.core.fs import dp_over_all_subsets, initial_state
from repro.core.fs_star import fs_star_levels
from repro.functions import achilles_heel, hidden_weighted_bit, majority
from repro.observability import Profiler
from repro.truth_table import TruthTable


def families_n_le_8():
    """Small benchmark families exercising distinct DP shapes."""
    return [
        TruthTable.random(6, seed=1),
        TruthTable.random(8, seed=8),
        achilles_heel(3),          # n=6, huge ordering gap
        hidden_weighted_bit(6),
        majority(7),
    ]


class TestKernelRegistry:
    def test_builtins_registered(self):
        assert {"numpy", "python"} <= set(available_kernels())

    def test_get_kernel_resolves(self):
        assert get_kernel("numpy") is compact

    def test_unknown_kernel_raises_value_error(self):
        with pytest.raises(ValueError):
            get_kernel("cuda")
        with pytest.raises(ValueError):
            run_fs(TruthTable.random(2, seed=0), engine="cuda")

    def test_custom_kernel_selectable_everywhere(self):
        calls = {"count": 0}

        @register_kernel("counting")
        def counting_kernel(state, var, rule=ReductionRule.BDD, counters=None):
            calls["count"] += 1
            return compact(state, var, rule, counters)

        try:
            tt = TruthTable.random(4, seed=4)
            result = run_fs(tt, engine="counting")
            assert result.mincost == run_fs(tt).mincost
            assert calls["count"] > 0
        finally:
            del engine_module._KERNELS["counting"]

    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            EngineConfig(kernel="nope")
        with pytest.raises(ValueError):
            EngineConfig(jobs=0)
        with pytest.raises(ValueError):
            EngineConfig(frontier="sometimes")

    def test_config_coerces_policy_string(self):
        assert EngineConfig(frontier="mincost").frontier is (
            FrontierPolicy.MINCOST_ONLY
        )


class TestLayerParallelism:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_run_fs_bit_identical_across_jobs(self, jobs):
        for table in families_n_le_8():
            seq = run_fs(table)
            par = run_fs(table, jobs=jobs)
            assert par.order == seq.order
            assert par.pi == seq.pi
            assert par.mincost == seq.mincost
            assert par.mincost_by_subset == seq.mincost_by_subset
            assert par.best_last == seq.best_last
            assert par.level_cost_by_choice == seq.level_cost_by_choice

    def test_counters_identical_jobs_1_vs_4(self):
        # The deterministic-merge regression: per-worker counters merged
        # in chunk order must tally exactly like the sequential run.
        for table in families_n_le_8():
            seq = run_fs(table, counters=OperationCounters(), jobs=1)
            par = run_fs(table, counters=OperationCounters(), jobs=4)
            assert par.counters == seq.counters
            assert par.counters.snapshot() == seq.counters.snapshot()

    def test_shared_identical_across_jobs(self):
        tables = [TruthTable.random(5, seed=s) for s in (1, 2, 3)]
        seq = run_fs_shared(tables)
        par = run_fs_shared(tables, jobs=3)
        assert par.order == seq.order
        assert par.mincost == seq.mincost
        assert par.mincost_by_subset == seq.mincost_by_subset
        assert par.counters == seq.counters

    def test_constrained_identical_across_jobs(self):
        tt = TruthTable.random(6, seed=9)
        precedence = [(0, 3), (1, 4)]
        seq = run_fs_constrained(tt, precedence)
        par = run_fs_constrained(tt, precedence, jobs=4)
        assert par.order == seq.order
        assert par.mincost == seq.mincost
        assert par.feasible_subsets == seq.feasible_subsets
        assert par.counters == seq.counters

    def test_fs_star_identical_across_jobs(self):
        tt = TruthTable.random(6, seed=11)
        base = initial_state(tt)
        seq_counters = OperationCounters()
        par_counters = OperationCounters()
        seq = fs_star_levels(base, 0b111011, counters=seq_counters, upto=3)
        par = fs_star_levels(
            base, 0b111011, counters=par_counters, upto=3,
            config=EngineConfig(jobs=4),
        )
        assert seq.keys() == par.keys()
        for kmask in seq:
            assert seq[kmask].mincost == par[kmask].mincost
            assert seq[kmask].pi == par[kmask].pi
        assert seq_counters == par_counters


class TestFrontierPolicy:
    def test_optimal_orderings_unchanged_under_mincost_only(self):
        for table in families_n_le_8():
            full = run_fs(table)
            lean = run_fs(table, frontier="mincost")
            assert lean.order == full.order
            assert lean.mincost == full.mincost
            assert lean.mincost_by_subset == full.mincost_by_subset
            assert lean.level_cost_by_choice == full.level_cost_by_choice
            assert lean.optimal_orderings() == full.optimal_orderings()

    def test_paper_counter_law_intact_under_recompute(self):
        # Replay work must live in extra counters only: table_cells keeps
        # the exact n * 3^(n-1) law of Theorem 5.
        from repro.analysis.complexity import fs_table_cells

        tt = TruthTable.random(6, seed=6)
        lean = run_fs(tt, frontier="mincost")
        assert lean.counters.table_cells == fs_table_cells(6)
        assert lean.counters.extra["recompute_compactions"] > 0

    def test_mincost_only_shrinks_peak_frontier(self):
        tt = TruthTable.random(8, seed=8)
        full_profile, lean_profile = Profiler(), Profiler()
        run_fs(tt, profiler=full_profile)
        run_fs(tt, frontier="mincost", profiler=lean_profile)
        assert lean_profile.peak_frontier_bytes < full_profile.peak_frontier_bytes

    def test_mincost_only_with_jobs_still_deterministic(self):
        tt = TruthTable.random(7, seed=7)
        seq = run_fs(tt, frontier="mincost")
        par = run_fs(tt, frontier="mincost", jobs=4)
        assert par.mincost_by_subset == seq.mincost_by_subset
        assert par.counters == seq.counters

    def test_final_layer_materialized_for_fs_star(self):
        # Partial sweeps hand their frontier to further compaction
        # (divide & conquer preprocessing), so even the lean policy must
        # return real tables at the cut.
        tt = TruthTable.random(6, seed=13)
        base = initial_state(tt)
        levels = fs_star_levels(
            base, 0b111111, upto=2,
            config=EngineConfig(frontier="mincost"),
        )
        for state in levels.values():
            assert state.table is not None
            assert state.table.shape == (1 << 4,)

    def test_window_sweep_with_engine_config(self):
        tt = TruthTable.random(6, seed=21)
        default = window_sweep(tt, width=3)
        configured = window_sweep(
            tt, width=3, config=EngineConfig(kernel="python", jobs=2)
        )
        assert configured.order == default.order
        assert configured.size == default.size


class TestSweepContract:
    def test_no_hand_rolled_sweeps_outside_engine(self):
        # The refactor's structural claim: the engine owns the layer
        # sweep; no DP module enumerates subsets_of_size itself anymore.
        import pathlib

        core = pathlib.Path(engine_module.__file__).parent
        for name in ("fs", "shared", "constrained", "window", "fs_star"):
            source = (core / f"{name}.py").read_text()
            assert "subsets_of_size" not in source, (
                f"core/{name}.py re-grew a hand-rolled subset sweep"
            )

    def test_dp_over_all_subsets_compat_wrapper(self):
        tt = TruthTable.random(4, seed=17)
        counters = OperationCounters()
        final, mincost, best_last, level_cost = dp_over_all_subsets(
            initial_state(tt), compact, ReductionRule.BDD, counters
        )
        reference = run_fs(tt)
        assert final.mincost == reference.mincost
        assert mincost == reference.mincost_by_subset
        assert best_last == reference.best_last
        assert level_cost == reference.level_cost_by_choice

    def test_sweep_outcome_universe_relative_masks(self):
        tt = TruthTable.random(5, seed=19)
        state = initial_state(tt)
        outcome = run_layered_sweep(state, (1 << 5) - 1)
        assert set(outcome.frontier) == {(1 << 5) - 1}
        assert 0 in outcome.mincost_by_subset
        assert outcome.subsets_processed == (1 << 5) - 1

    def test_overlapping_universe_rejected(self):
        from repro.errors import DimensionError

        tt = TruthTable.random(4, seed=23)
        placed = compact(initial_state(tt), 1)
        with pytest.raises(DimensionError):
            run_layered_sweep(placed, 0b0010)

    def test_upto_zero_returns_base(self):
        tt = TruthTable.random(4, seed=29)
        state = initial_state(tt)
        outcome = run_layered_sweep(state, 0b1111, upto=0)
        assert outcome.frontier == {0: state}
        assert outcome.subsets_processed == 0
