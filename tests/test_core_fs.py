"""Unit tests for algorithm FS (the exact O*(3^n) DP, Theorem 5)."""

import math

import pytest

from repro.analysis.complexity import fs_table_cells
from repro.core import (
    ReductionRule,
    brute_force_optimal,
    find_optimal_ordering,
    run_fs,
)
from repro.functions import (
    achilles_good_size,
    achilles_heel,
    hidden_weighted_bit,
    majority,
    multiplexer,
    parity,
)
from repro.truth_table import TruthTable, count_subfunctions, obdd_size


class TestOptimality:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force_random(self, seed):
        n = 2 + seed % 4
        tt = TruthTable.random(n, seed=seed)
        assert run_fs(tt).mincost == brute_force_optimal(tt).mincost

    @pytest.mark.parametrize("seed", range(6))
    def test_returned_order_achieves_mincost(self, seed):
        tt = TruthTable.random(5, seed=50 + seed)
        result = run_fs(tt)
        assert sum(count_subfunctions(tt, list(result.order))) == result.mincost

    def test_all_optimal_orderings_match_brute_force(self):
        tt = TruthTable.random(4, seed=60)
        fs = run_fs(tt)
        bf = brute_force_optimal(tt)
        assert set(fs.optimal_orderings()) == set(bf.all_optimal)

    def test_every_enumerated_optimum_achieves_mincost(self):
        tt = TruthTable.random(4, seed=61)
        fs = run_fs(tt)
        for order in fs.optimal_orderings():
            assert sum(count_subfunctions(tt, list(order))) == fs.mincost


class TestKnownFunctions:
    @pytest.mark.parametrize("pairs", [1, 2, 3])
    def test_achilles_heel_optimum(self, pairs):
        result = run_fs(achilles_heel(pairs))
        assert result.size == achilles_good_size(pairs)

    def test_achilles_optimal_orders_keep_pairs_adjacent(self):
        result = run_fs(achilles_heel(3))
        for order in result.optimal_orderings():
            positions = {v: i for i, v in enumerate(order)}
            for pair in range(3):
                assert abs(positions[2 * pair] - positions[2 * pair + 1]) == 1

    def test_parity_symmetric(self):
        result = run_fs(parity(5))
        assert result.mincost == 9  # 2n - 1 internal nodes

    def test_majority(self):
        # Symmetric: width profile is the Pascal-triangle-with-merging one.
        result = run_fs(majority(5))
        assert result.mincost == sum(count_subfunctions(majority(5), [0, 1, 2, 3, 4]))

    def test_multiplexer_optimum_reads_selects_first(self):
        table = multiplexer(2)  # 2 selects + 4 data = 6 vars
        result = run_fs(table)
        # Optimal: selects (vars 0,1) at the top, data below: 3 + 4 internal.
        assert result.mincost == 7
        assert set(result.order[:2]) == {0, 1}

    def test_hidden_weighted_bit(self):
        table = hidden_weighted_bit(5)
        result = run_fs(table)
        assert result.mincost == brute_force_optimal(table).mincost

    def test_constant_function(self):
        result = run_fs(TruthTable.constant(3, 0))
        assert result.mincost == 0
        assert result.size == 2  # num_terminals is 2 for Boolean rules

    def test_single_variable(self):
        result = run_fs(TruthTable.projection(1, 0))
        assert result.mincost == 1 and result.order == (0,)


class TestResultFields:
    def test_pi_is_reverse_of_order(self):
        result = run_fs(TruthTable.random(4, seed=70))
        assert tuple(reversed(result.pi)) == result.order

    def test_mincost_by_subset_complete(self):
        n = 4
        result = run_fs(TruthTable.random(n, seed=71))
        assert set(result.mincost_by_subset) == set(range(1 << n))
        assert result.mincost_by_subset[0] == 0
        assert result.mincost_by_subset[(1 << n) - 1] == result.mincost

    def test_mincost_monotone_in_subsets(self):
        result = run_fs(TruthTable.random(4, seed=72))
        for mask, cost in result.mincost_by_subset.items():
            for i in range(4):
                if mask & (1 << i):
                    assert cost >= result.mincost_by_subset[mask & ~(1 << i)]

    def test_best_last_is_member(self):
        result = run_fs(TruthTable.random(4, seed=73))
        for mask, var in result.best_last.items():
            assert mask & (1 << var)

    def test_level_cost_consistency(self):
        # MINCOST_I == MINCOST_{I\i*} + Cost_{i*} for the recorded i*.
        result = run_fs(TruthTable.random(4, seed=74))
        for mask, var in result.best_last.items():
            prev = mask & ~(1 << var)
            assert (
                result.mincost_by_subset[prev] + result.level_cost(prev, var)
                == result.mincost_by_subset[mask]
            )

    def test_lemma4_recurrence_holds_everywhere(self):
        from repro._bitops import bits_of

        result = run_fs(TruthTable.random(5, seed=75))
        for mask, cost in result.mincost_by_subset.items():
            if mask == 0:
                continue
            best = min(
                result.mincost_by_subset[mask & ~(1 << i)]
                + result.level_cost(mask & ~(1 << i), i)
                for i in bits_of(mask)
            )
            assert cost == best


class TestComplexityAccounting:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_cell_count_closed_form(self, n):
        result = run_fs(TruthTable.random(n, seed=n))
        assert result.counters.table_cells == fs_table_cells(n)

    def test_cell_closed_form_identity(self):
        # sum_k C(n,k) k 2^{n-k} == n 3^{n-1}
        for n in range(1, 12):
            assert fs_table_cells(n) == n * 3 ** (n - 1)

    def test_subsets_processed(self):
        n = 5
        result = run_fs(TruthTable.random(n, seed=80))
        assert result.counters.subsets_processed == (1 << n) - 1


class TestRules:
    def test_zdd_optimum_vs_bruteforce(self):
        tt = TruthTable.random(4, seed=81)
        assert (
            run_fs(tt, rule=ReductionRule.ZDD).mincost
            == brute_force_optimal(tt, rule=ReductionRule.ZDD).mincost
        )

    def test_mtbdd_optimum_vs_bruteforce(self):
        tt = TruthTable.random(4, seed=82, num_values=3)
        assert (
            run_fs(tt, rule=ReductionRule.MTBDD).mincost
            == brute_force_optimal(tt, rule=ReductionRule.MTBDD).mincost
        )

    def test_mtbdd_on_boolean_equals_bdd(self):
        tt = TruthTable.random(4, seed=83)
        assert run_fs(tt).mincost == run_fs(tt, rule=ReductionRule.MTBDD).mincost

    def test_bad_engine(self):
        with pytest.raises(ValueError):
            run_fs(TruthTable.random(2, seed=0), engine="cuda")


class TestFrontEnd:
    def test_find_from_callable(self):
        result = find_optimal_ordering(lambda a, b, c: a & (b | c), n=3)
        assert result.mincost == 3

    def test_find_from_expression(self):
        from repro.expr import parse

        result = find_optimal_ordering(parse("x0 & x1 | x2 & x3"))
        assert result.size == 6

    def test_find_from_bdd_node(self):
        from repro.bdd import BDD

        mgr = BDD(3)
        f = mgr.apply_or(mgr.apply_and(mgr.var(0), mgr.var(1)), mgr.var(2))
        result = find_optimal_ordering((mgr, f))
        assert result.mincost == 3

    def test_find_truth_table_passthrough(self):
        tt = TruthTable.random(3, seed=84)
        assert find_optimal_ordering(tt).mincost == run_fs(tt).mincost
