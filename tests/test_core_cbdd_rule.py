"""Unit tests for the complement-edge reduction rule in the FS family.

This is a library extension beyond the paper (the paper's cost counts
plain OBDD nodes): the same DP with edge-valued tables minimizes
CUDD-style complement-edge BDDs.  Ground truth is the independent CBDD
manager of :mod:`repro.bdd.cbdd` under n!-enumeration.
"""

import itertools
import random

import pytest

from repro.bdd.cbdd import cbdd_size
from repro.core import (
    ReductionRule,
    brute_force_optimal,
    opt_obdd,
    reconstruct_minimum_diagram,
    run_fs,
    run_fs_shared,
)
from repro.core.astar import astar_optimal_ordering
from repro.core.shared import brute_force_shared, build_forest
from repro.functions import parity
from repro.truth_table import TruthTable


def cbdd_brute_force(table):
    return min(
        cbdd_size(table, list(perm), include_terminals=False)
        for perm in itertools.permutations(range(table.n))
    )


class TestExactness:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_manager_enumeration(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(1, 5)
        table = TruthTable.random(n, seed=seed)
        fs = run_fs(table, rule=ReductionRule.CBDD)
        assert fs.mincost == cbdd_brute_force(table)
        assert (
            cbdd_size(table, list(fs.order), include_terminals=False)
            == fs.mincost
        )

    def test_generic_bruteforce_agrees(self):
        table = TruthTable.random(4, seed=10)
        assert (
            brute_force_optimal(table, rule=ReductionRule.CBDD).mincost
            == cbdd_brute_force(table)
        )

    def test_astar_supports_cbdd(self):
        table = TruthTable.random(4, seed=11)
        assert (
            astar_optimal_ordering(table, rule=ReductionRule.CBDD).mincost
            == run_fs(table, rule=ReductionRule.CBDD).mincost
        )

    def test_opt_obdd_supports_cbdd(self):
        table = TruthTable.random(5, seed=12)
        assert (
            opt_obdd(table, rule=ReductionRule.CBDD).mincost
            == run_fs(table, rule=ReductionRule.CBDD).mincost
        )

    def test_engines_agree(self):
        table = TruthTable.random(4, seed=13)
        assert (
            run_fs(table, rule=ReductionRule.CBDD, engine="python").mincost
            == run_fs(table, rule=ReductionRule.CBDD, engine="numpy").mincost
        )

    def test_multivalued_rejected(self):
        with pytest.raises(Exception):
            run_fs(TruthTable(1, [0, 2]), rule=ReductionRule.CBDD)


class TestStructure:
    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_parity_optimal_is_n(self, n):
        # The canonical complement-edge win: n nodes instead of 2n - 1.
        assert run_fs(parity(n), rule=ReductionRule.CBDD).mincost == n

    def test_never_larger_than_plain_optimum(self):
        for seed in range(5):
            table = TruthTable.random(4, seed=20 + seed)
            cbdd = run_fs(table, rule=ReductionRule.CBDD).mincost
            plain = run_fs(table, rule=ReductionRule.BDD).mincost
            assert cbdd <= plain

    def test_complement_invariance(self):
        # f and ~f have identical minimum CBDDs.
        table = TruthTable.random(5, seed=30)
        assert (
            run_fs(table, rule=ReductionRule.CBDD).mincost
            == run_fs(~table, rule=ReductionRule.CBDD).mincost
        )

    def test_reconstruction_roundtrip(self):
        table = TruthTable.random(4, seed=31)
        result = run_fs(table, rule=ReductionRule.CBDD)
        diagram = reconstruct_minimum_diagram(table, result)
        assert diagram.to_truth_table() == table
        assert diagram.num_terminals == 1
        assert diagram.terminal_values == [1]

    def test_reconstruction_dot(self):
        table = TruthTable.random(3, seed=32)
        diagram = reconstruct_minimum_diagram(
            table, run_fs(table, rule=ReductionRule.CBDD)
        )
        dot = diagram.to_dot(name="CEdge")
        assert dot.startswith("digraph CEdge")
        assert 'label="T"' in dot

    def test_constant_functions(self):
        for value in (0, 1):
            result = run_fs(TruthTable.constant(3, value),
                            rule=ReductionRule.CBDD)
            assert result.mincost == 0


class TestShared:
    def test_shared_matches_bruteforce(self):
        tables = [TruthTable.random(3, seed=40), TruthTable.random(3, seed=41)]
        shared = run_fs_shared(tables, rule=ReductionRule.CBDD)
        _, bf = brute_force_shared(tables, rule=ReductionRule.CBDD)
        assert shared.mincost == bf

    def test_forest_roundtrip(self):
        tables = [TruthTable.random(3, seed=42), TruthTable.random(3, seed=43)]
        forest = build_forest(tables, [1, 0, 2], ReductionRule.CBDD)
        assert forest.to_truth_tables() == tables

    def test_complement_pair_fully_shared(self):
        # Under complement edges, {f, ~f} costs exactly what f alone costs.
        table = TruthTable.random(4, seed=44)
        shared = run_fs_shared([table, ~table], rule=ReductionRule.CBDD)
        alone = run_fs(table, rule=ReductionRule.CBDD)
        assert shared.mincost == alone.mincost

    def test_complement_pair_not_shared_without_edges(self):
        # The same pair usually costs MORE under the plain-BDD rule —
        # the motivating contrast for complement edges.
        table = TruthTable.random(4, seed=45)
        plain_shared = run_fs_shared([table, ~table]).mincost
        plain_alone = run_fs(table).mincost
        assert plain_shared >= plain_alone
