"""Cross-module integration tests: realistic end-to-end workflows."""

import random

import pytest

from repro import (
    BDD,
    ZDD,
    ClassicalMinimumFinder,
    QuantumMinimumFinder,
    QueryLedger,
    ReductionRule,
    TruthTable,
    brute_force_optimal,
    build_diagram,
    find_optimal_ordering,
    obdd_size,
    opt_obdd,
    parse,
    reconstruct_minimum_diagram,
    run_fs,
    sift,
    to_truth_table,
)
from repro.functions import (
    adder_bit,
    comparator,
    family_truth_table,
    multiplexer,
    path_independent_sets,
)


class TestVerificationWorkflow:
    """The formal-verification use case: equivalence checking of two
    implementations via canonical minimum OBDDs."""

    def test_equivalent_circuits_get_identical_minimum_diagrams(self):
        from repro.expr import ripple_carry_adder_circuit

        bits = 3
        spec = adder_bit(bits, 2)
        implementation = to_truth_table(ripple_carry_adder_circuit(bits, 2))
        result_spec = run_fs(spec)
        result_impl = run_fs(implementation)
        assert result_spec.mincost == result_impl.mincost
        d1 = reconstruct_minimum_diagram(spec, result_spec)
        d2 = reconstruct_minimum_diagram(implementation, result_impl)
        assert d1.to_truth_table() == d2.to_truth_table()

    def test_manager_equivalence_check_via_canonicity(self):
        mgr = BDD(4)
        left = mgr.apply_or(mgr.apply_and(mgr.var(0), mgr.var(1)),
                            mgr.apply_and(mgr.var(2), mgr.var(3)))
        right = mgr.apply_not(
            mgr.apply_and(
                mgr.apply_nand(mgr.var(0), mgr.var(1)),
                mgr.apply_nand(mgr.var(2), mgr.var(3)),
            )
        )
        assert left == right  # canonical ids: equivalence is id equality


class TestSynthesisWorkflow:
    """Pick an ordering with a heuristic, then certify it with FS."""

    def test_sift_then_certify(self):
        table = comparator(3)
        heuristic = sift(table)
        exact = run_fs(table)
        assert heuristic.size >= exact.size
        gap = heuristic.size - exact.size
        assert gap >= 0
        # the certificate ordering actually achieves the optimum
        assert obdd_size(table, list(exact.order)) == exact.size

    def test_optimal_ordering_transfers_to_manager(self):
        table = multiplexer(2)
        exact = run_fs(table)
        mgr = BDD(table.n, list(exact.order))
        root = mgr.from_truth_table(table)
        assert mgr.size(root) == exact.size


class TestZddWorkflow:
    """The combinatorics use case: set families via minimum ZDDs."""

    def test_family_to_minimum_zdd(self):
        family = path_independent_sets(5)
        table = family_truth_table(5, family)
        result = run_fs(table, rule=ReductionRule.ZDD)
        z = ZDD(5, list(result.order))
        root = z.from_sets(family)
        assert z.size(root, include_terminals=False) == result.mincost
        assert z.count(root) == len(family)

    def test_zdd_diagram_membership(self):
        family = [{0, 2}, {1}, set()]
        table = family_truth_table(3, family)
        result = run_fs(table, rule=ReductionRule.ZDD)
        diagram = reconstruct_minimum_diagram(table, result)
        assert diagram.to_truth_table() == table


class TestQuantumWorkflow:
    """Full quantum pipeline with ledger accounting."""

    def test_ledger_accumulates_across_phases(self):
        ledger = QueryLedger()
        finder = QuantumMinimumFinder(ledger=ledger, epsilon=1e-6,
                                      rng=random.Random(0))
        table = TruthTable.random(7, seed=1)
        result = opt_obdd(table, finder=finder)
        assert result.mincost == run_fs(table).mincost
        # One minimum-finding call per recursion node: at least one per
        # division level, many more inside the nested cost evaluations.
        assert ledger.invocations >= len(result.levels)
        snapshot = ledger.snapshot()
        assert snapshot["total"] == ledger.total

    def test_classical_vs_quantum_same_answer(self):
        table = TruthTable.random(6, seed=2)
        classical = opt_obdd(table, finder=ClassicalMinimumFinder())
        quantum = opt_obdd(
            table,
            finder=QuantumMinimumFinder(epsilon=1e-6, rng=random.Random(1)),
        )
        assert classical.mincost == quantum.mincost


class TestFrontEndWorkflow:
    def test_parse_minimize_export(self, tmp_path):
        expr = parse("x0 & x1 | x2 & x3")
        result = find_optimal_ordering(expr)
        table = to_truth_table(expr)
        diagram = reconstruct_minimum_diagram(table, result)
        dot = diagram.to_dot(name="Parsed")
        path = tmp_path / "diagram.dot"
        path.write_text(dot)
        assert path.read_text().startswith("digraph Parsed")

    def test_three_rules_one_function(self):
        table = TruthTable.random(4, seed=3)
        sizes = {
            rule: run_fs(table, rule=rule).mincost
            for rule in (ReductionRule.BDD, ReductionRule.ZDD, ReductionRule.MTBDD)
        }
        assert sizes[ReductionRule.BDD] == sizes[ReductionRule.MTBDD]
        brute = brute_force_optimal(table, rule=ReductionRule.ZDD)
        assert sizes[ReductionRule.ZDD] == brute.mincost


class TestScaleSanity:
    def test_n10_runs_quickly_and_correctly(self):
        # The largest routine size in the test suite; cross-checked with
        # the heuristics rather than n! brute force.
        table = TruthTable.random(10, seed=4)
        result = run_fs(table)
        assert sift(table).size >= result.size
        assert obdd_size(table, list(result.order)) == result.size
