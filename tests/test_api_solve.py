"""Tests for the unified front door (:mod:`repro.api`).

``repro.solve()`` must dispatch to all five DP entry points, return one
:class:`~repro.api.OrderingSolution` shape whose fields agree with the
native ``run_*`` results, pass engine knobs through uniformly, and fail
loudly (naming the offender) on unknown methods or keyword arguments —
while the five ``run_*`` functions stay importable and untouched.
"""

import pytest

import repro
from repro import OrderingSolution, parse, solve
from repro.analysis.counters import OperationCounters
from repro.core import (
    initial_state,
    run_fs,
    run_fs_constrained,
    run_fs_shared,
    run_fs_star,
    window_sweep,
)
from repro.core.fs import FSResult, terminal_values
from repro.core.spec import ReductionRule
from repro.core.window import WindowResult
from repro.observability import Profiler
from repro.truth_table import TruthTable


TABLE = TruthTable.random(6, seed=13)


class TestSolveDispatch:
    def test_fs_matches_run_fs(self):
        direct = run_fs(TABLE)
        sol = solve(TABLE)
        assert isinstance(sol, OrderingSolution)
        assert sol.method == "fs"
        assert sol.exact is True
        assert sol.mincost == direct.mincost
        assert sol.order == direct.order
        assert sol.n == TABLE.n
        assert sol.rule == ReductionRule.BDD
        assert sol.num_terminals == direct.num_terminals
        assert sol.size == direct.mincost + direct.num_terminals
        assert isinstance(sol.result, FSResult)

    def test_fs_accepts_expressions(self):
        from repro.expr import to_truth_table

        sol = solve(parse("x0 & x1 | x2 & x3"))
        assert sol.mincost == run_fs(
            to_truth_table(parse("x0 & x1 | x2 & x3"))).mincost

    def test_shared_matches_run_fs_shared(self):
        tables = [TruthTable.random(5, seed=s) for s in (1, 2)]
        direct = run_fs_shared(tables)
        sol = solve(tables, method="shared")
        assert sol.method == "shared"
        assert sol.exact is True
        assert sol.mincost == direct.mincost
        assert sol.order == direct.order

    def test_constrained_matches_run_fs_constrained(self):
        precedence = [(0, 2), (1, 3)]
        direct = run_fs_constrained(TABLE, precedence)
        sol = solve(TABLE, method="constrained", precedence=precedence)
        assert sol.method == "constrained"
        assert sol.exact is True
        assert sol.mincost == direct.mincost
        assert sol.order == direct.order

    def test_constrained_requires_precedence(self):
        with pytest.raises(TypeError, match="precedence"):
            solve(TABLE, method="constrained")

    def test_window_matches_window_sweep(self):
        direct = window_sweep(TABLE, width=3)
        sol = solve(TABLE, method="window", width=3)
        assert sol.method == "window"
        assert sol.exact is False  # locally exact, globally heuristic
        assert sol.mincost == direct.size
        assert sol.order == direct.order
        assert isinstance(sol.result, WindowResult)
        assert sol.num_terminals == len(
            terminal_values(TABLE, ReductionRule.BDD))

    def test_window_respects_initial_order_and_width(self):
        initial = tuple(reversed(range(TABLE.n)))
        direct = window_sweep(TABLE, initial_order=initial, width=4,
                              max_rounds=2)
        sol = solve(TABLE, method="window", initial_order=initial,
                    width=4, max_rounds=2)
        assert sol.order == direct.order
        assert sol.mincost == direct.size

    def test_fs_star_matches_run_fs_star(self):
        base = initial_state(TruthTable.random(5, seed=7))
        direct = run_fs_star(base, 0b11111)
        sol = solve(base, method="fs_star", j_mask=0b11111)
        assert sol.method == "fs_star"
        assert sol.exact is True
        assert sol.mincost == direct.mincost
        assert sol.order == tuple(reversed(direct.pi))
        assert sol.result.pi == direct.pi

    def test_fs_star_requires_fsstate_and_j_mask(self):
        with pytest.raises(TypeError, match="FSState"):
            solve(TABLE, method="fs_star", j_mask=0b1)
        base = initial_state(TruthTable.random(4, seed=1))
        with pytest.raises(TypeError, match="j_mask"):
            solve(base, method="fs_star")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="teleport"):
            solve(TABLE, method="teleport")


class TestSolveEngineKwargs:
    def test_unknown_kwarg_named_in_error(self):
        with pytest.raises(TypeError, match="turbo"):
            solve(TABLE, turbo=True)

    def test_backend_and_jobs_pass_through(self):
        baseline = solve(TABLE)
        for method_kwargs in (
            {"backend": "serial"},
            {"backend": "thread", "jobs": 4},
            {"backend": "process", "jobs": 2},
        ):
            sol = solve(TABLE, **method_kwargs)
            assert sol.mincost == baseline.mincost
            assert sol.order == baseline.order

    def test_engine_kwargs_reach_window_config(self):
        direct = window_sweep(TABLE, width=3)
        sol = solve(TABLE, method="window", width=3, backend="serial",
                    jobs=1, engine="numpy")
        assert sol.mincost == direct.size

    def test_profiler_attached_and_returned(self):
        profiler = Profiler()
        sol = solve(TABLE, profiler=profiler)
        assert sol.profile is profiler
        assert profiler.layers  # the sweep actually recorded into it

    def test_counters_sink_used(self):
        counters = OperationCounters()
        sol = solve(TABLE, counters=counters)
        assert counters.subsets_processed > 0
        assert sol.counters.snapshot() == counters.snapshot()


class TestEntryPointsStayPublic:
    def test_run_functions_importable_from_top_level(self):
        for name in ("run_fs", "run_fs_shared", "run_fs_star",
                     "window_sweep", "find_optimal_ordering",
                     "solve", "OrderingSolution"):
            assert hasattr(repro, name)

    def test_methods_tuple_is_the_contract(self):
        from repro.api import METHODS

        assert METHODS == ("fs", "shared", "constrained", "window",
                           "fs_star")
