"""Tests reproducing the paper's Appendix C numbers (Tables 1 and 2)."""

import math

import pytest

from repro.analysis.parameters import (
    ParameterSolution,
    f_exponent,
    g_exponent,
    gamma0,
    gamma1,
    gamma2_appendix_b,
    solve_parameters,
    solve_table1,
    solve_table2,
    theorem13_constant,
)

# Paper values (Appendix C, Table 1), 6 published digits.
TABLE1 = {
    1: (2.97625, (0.274862,)),
    2: (2.85690, (0.192754, 0.334571)),
    3: (2.83925, (0.184664, 0.205128, 0.342677)),
    4: (2.83744, (0.183859, 0.186017, 0.206375, 0.343503)),
    5: (2.83729, (0.183795, 0.183967, 0.186125, 0.206474, 0.343569)),
    6: (2.83728, (0.183791, 0.183802, 0.183974, 0.186131, 0.206480, 0.343573)),
}

# Paper values (Appendix C, Table 2): (gamma_in, beta_6).
TABLE2 = [
    (3.0, 2.83728),
    (2.83728, 2.79364),
    (2.79364, 2.77981),
    (2.77981, 2.77521),
    (2.77521, 2.77366),
    (2.77366, 2.77313),
    (2.77313, 2.77295),
    (2.77295, 2.77289),
    (2.77289, 2.77287),
    (2.77287, 2.77286),
]


class TestExponentFunctions:
    def test_g_linear(self):
        assert g_exponent(0.2, 0.5, 2.0) == pytest.approx(0.5 + 0.3)

    def test_f_reduces_to_g_plus_entropy(self):
        x, y = 0.25, 0.5
        assert f_exponent(x, y, 3.0) == pytest.approx(
            0.5 * y * 1.0 + g_exponent(x, y, 3.0)
        )  # H(0.5) == 1

    def test_f_domain(self):
        with pytest.raises(ValueError):
            f_exponent(0.5, 0.4)


class TestSimpleCases:
    def test_gamma0(self):
        value, alpha = gamma0()
        assert value == pytest.approx(2.98581, abs=5e-6)
        assert alpha == pytest.approx(0.269577, abs=1e-6)

    def test_gamma1(self):
        value, alpha = gamma1()
        assert value == pytest.approx(2.97625, abs=5e-6)
        assert alpha == pytest.approx(0.274863, abs=1e-6)

    def test_gamma1_improves_on_gamma0(self):
        assert gamma1()[0] < gamma0()[0] < 3.0

    def test_appendix_b(self):
        value, a1, a2 = gamma2_appendix_b()
        assert value == pytest.approx(2.8569, abs=5e-5)
        assert a1 == pytest.approx(0.192755, abs=2e-6)
        assert a2 == pytest.approx(0.334571, abs=2e-6)


class TestTable1:
    @pytest.mark.parametrize("k", sorted(TABLE1))
    def test_gamma_k_matches_paper(self, k):
        row = solve_parameters(k, 3.0)
        paper_gamma, paper_alphas = TABLE1[k]
        # abs=2e-5 on the gamma column: our k=2 solution satisfies the
        # system to residual 1e-16 and matches the paper's alphas to all
        # six digits, but yields 2.856887 where the paper prints 2.85690
        # (a last-digit rounding artifact on their side; Appendix B quotes
        # the same quantity as 2.8569).
        assert row.base == pytest.approx(paper_gamma, abs=2e-5)
        for ours, theirs in zip(row.alphas, paper_alphas):
            assert ours == pytest.approx(theirs, abs=2e-6)

    def test_k1_equals_gamma1(self):
        assert solve_parameters(1, 3.0).base == pytest.approx(gamma1()[0])

    def test_monotone_improvement_in_k(self):
        rows = solve_table1(6)
        bases = [row.base for row in rows]
        assert bases == sorted(bases, reverse=True)

    def test_diminishing_returns(self):
        rows = solve_table1(6)
        assert rows[5].base > rows[4].base - 1e-4  # negligible beyond k=5/6

    def test_residuals_tiny(self):
        for row in solve_table1(6):
            assert row.residual < 1e-9

    def test_alphas_strictly_increasing(self):
        for row in solve_table1(6):
            assert list(row.alphas) == sorted(row.alphas)
            assert row.alphas[0] < 1 / 3  # the assumption the paper checks

    def test_k_validation(self):
        with pytest.raises(ValueError):
            solve_parameters(0)


class TestTable2:
    def test_all_rows_match_paper(self):
        rows = solve_table2(10)
        assert len(rows) == 10
        for row, (gamma_in, beta) in zip(rows, TABLE2):
            assert row.gamma_subroutine == pytest.approx(gamma_in, abs=5e-6)
            assert row.base == pytest.approx(beta, abs=5e-6)

    def test_alpha_vectors_match_paper_last_row(self):
        last = solve_table2(10)[-1]
        paper = (0.157910, 0.157914, 0.157990, 0.159230, 0.174208, 0.299109)
        for ours, theirs in zip(last.alphas, paper):
            assert ours == pytest.approx(theirs, abs=2e-6)

    def test_theorem13_constant(self):
        assert theorem13_constant() <= 2.77286 + 5e-6

    def test_iteration_is_contraction(self):
        rows = solve_table2(10)
        gaps = [abs(row.base - row.gamma_subroutine) for row in rows]
        assert all(later < earlier for earlier, later in zip(gaps, gaps[1:]))

    def test_fixed_point_stability(self):
        # Iterating past 10 moves the constant by < 1e-5.
        more = solve_table2(13)
        assert abs(more[-1].base - more[9].base) < 1e-5
