"""Unit tests for the symmetric-function closed-form profiles."""

import itertools

import pytest

from repro.analysis import (
    is_totally_symmetric,
    parity_size,
    symmetric_from_value_vector,
    symmetric_obdd_size,
    symmetric_profile,
    threshold_size,
    value_vector,
)
from repro.core import run_fs
from repro.errors import DimensionError
from repro.functions import majority, parity, threshold
from repro.truth_table import TruthTable, count_subfunctions, obdd_size


class TestDetection:
    def test_symmetric_families_detected(self):
        assert is_totally_symmetric(parity(5))
        assert is_totally_symmetric(threshold(5, 2))
        assert is_totally_symmetric(majority(5))
        assert is_totally_symmetric(TruthTable.constant(4, 1))

    def test_asymmetric_rejected(self):
        assert not is_totally_symmetric(TruthTable.projection(3, 0))

    def test_value_vector(self):
        assert value_vector(parity(4)) == [0, 1, 0, 1, 0]
        assert value_vector(threshold(4, 2)) == [0, 0, 1, 1, 1]

    def test_value_vector_requires_symmetry(self):
        with pytest.raises(DimensionError):
            value_vector(TruthTable.projection(2, 1))

    def test_roundtrip(self):
        for vec in ([0, 1, 1, 0], [1, 0, 1, 0], [0, 0, 0, 0]):
            table = symmetric_from_value_vector(3, vec)
            assert is_totally_symmetric(table)
            assert value_vector(table) == vec

    def test_vector_length_checked(self):
        with pytest.raises(DimensionError):
            symmetric_from_value_vector(3, [0, 1])


class TestProfile:
    @pytest.mark.parametrize("n", range(1, 8))
    def test_parity_profile(self, n):
        vec = value_vector(parity(n))
        assert symmetric_profile(n, vec) == count_subfunctions(
            parity(n), list(range(n))
        )

    @pytest.mark.parametrize("n,k", [(n, k) for n in range(1, 7)
                                     for k in range(n + 2)])
    def test_threshold_profile(self, n, k):
        table = threshold(n, k)
        vec = value_vector(table)
        assert symmetric_profile(n, vec) == count_subfunctions(
            table, list(range(n))
        )

    def test_random_symmetric_profiles(self):
        import random

        rnd = random.Random(0)
        for _ in range(15):
            n = rnd.randint(1, 7)
            vec = [rnd.randint(0, 1) for _ in range(n + 1)]
            table = symmetric_from_value_vector(n, vec)
            assert symmetric_profile(n, vec) == count_subfunctions(
                table, list(range(n))
            )

    def test_profile_is_ordering_invariant_fact(self):
        # The closed form has no ordering argument; confirm all orderings
        # of the table agree with it.
        vec = [0, 1, 1, 0, 1]
        table = symmetric_from_value_vector(4, vec)
        expected = sum(symmetric_profile(4, vec))
        for perm in itertools.permutations(range(4)):
            assert obdd_size(table, list(perm), include_terminals=False) == expected


class TestSizes:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_parity_closed_form(self, n):
        assert parity_size(n) == 2 * n - 1
        assert parity_size(n) == run_fs(parity(n)).mincost if n <= 7 else True

    def test_parity_validation(self):
        with pytest.raises(DimensionError):
            parity_size(0)

    @pytest.mark.parametrize("n,k", [(5, 2), (5, 3), (6, 1), (6, 6), (4, 0)])
    def test_threshold_size_matches_fs(self, n, k):
        assert threshold_size(n, k) == run_fs(threshold(n, k)).mincost

    def test_obdd_size_terminal_handling(self):
        vec = [1, 1, 1, 1]
        assert symmetric_obdd_size(3, vec) == 1  # constant: one terminal
        vec = [0, 1, 0, 1]
        assert symmetric_obdd_size(3, vec) == sum(symmetric_profile(3, vec)) + 2

    def test_symmetric_size_is_quadratic_not_exponential(self):
        # Width <= k+1 at level k: total <= n(n+1)/2 for any symmetric f.
        import random

        rnd = random.Random(1)
        for n in (6, 9, 12):
            vec = [rnd.randint(0, 1) for _ in range(n + 1)]
            size = symmetric_obdd_size(n, vec, include_terminals=False)
            assert size <= n * (n + 1) // 2
