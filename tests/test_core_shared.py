"""Unit tests for shared (multi-rooted) ordering optimization."""

import random

import pytest

from repro.core import (
    ReductionRule,
    brute_force_shared,
    build_forest,
    count_shared_subfunctions,
    initial_state_shared,
    run_fs,
    run_fs_shared,
)
from repro.errors import DimensionError, OrderingError
from repro.truth_table import TruthTable, count_subfunctions


class TestInitialState:
    def test_stacked_table(self):
        t1 = TruthTable.random(3, seed=1)
        t2 = TruthTable.random(3, seed=2)
        state = initial_state_shared([t1, t2])
        assert state.num_roots == 2
        assert state.table.shape == (16,)
        assert state.segment_size == 8

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            initial_state_shared([])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(DimensionError):
            initial_state_shared([TruthTable.random(2, seed=0),
                                  TruthTable.random(3, seed=0)])

    def test_multivalued_needs_mtbdd(self):
        with pytest.raises(DimensionError):
            initial_state_shared([TruthTable(1, [0, 2])])
        state = initial_state_shared(
            [TruthTable(1, [0, 2]), TruthTable(1, [1, 0])],
            rule=ReductionRule.MTBDD,
        )
        assert state.num_terminals == 3


class TestOptimality:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        rnd = random.Random(seed)
        n = rnd.randint(2, 4)
        m = rnd.randint(1, 3)
        tables = [TruthTable.random(n, seed=seed * 10 + j) for j in range(m)]
        fs = run_fs_shared(tables)
        _, bf_cost = brute_force_shared(tables)
        assert fs.mincost == bf_cost

    def test_order_achieves_mincost(self):
        tables = [TruthTable.random(4, seed=20), TruthTable.random(4, seed=21)]
        fs = run_fs_shared(tables)
        assert sum(count_shared_subfunctions(tables, list(fs.order))) == fs.mincost

    def test_single_output_equals_run_fs(self):
        table = TruthTable.random(5, seed=22)
        assert run_fs_shared([table]).mincost == run_fs(table).mincost

    def test_duplicate_outputs_fully_share(self):
        table = TruthTable.random(4, seed=23)
        assert run_fs_shared([table, table, table]).mincost == run_fs(table).mincost

    def test_complement_pair_shares_nothing_without_complement_edges(self):
        # f and ~f have disjoint internal nodes only at levels where their
        # subfunctions differ; the shared cost is between max and sum.
        table = TruthTable.random(4, seed=24)
        shared = run_fs_shared([table, ~table]).mincost
        single = run_fs(table).mincost
        assert single <= shared <= 2 * single

    def test_shared_at_most_sum_of_parts(self):
        tables = [TruthTable.random(4, seed=s) for s in (30, 31, 32)]
        shared = run_fs_shared(tables).mincost
        assert shared <= sum(run_fs(t).mincost for t in tables)

    def test_shared_at_least_each_part(self):
        # The forest contains every node of each output's reduced diagram
        # under the shared ordering, so the union is at least each part.
        tables = [TruthTable.random(4, seed=s) for s in (33, 34)]
        result = run_fs_shared(tables)
        order = list(result.order)
        for t in tables:
            assert result.mincost >= sum(count_subfunctions(t, order))

    def test_zdd_rule(self):
        tables = [TruthTable.random(3, seed=40), TruthTable.random(3, seed=41)]
        fs = run_fs_shared(tables, rule=ReductionRule.ZDD)
        _, bf_cost = brute_force_shared(tables, rule=ReductionRule.ZDD)
        assert fs.mincost == bf_cost

    def test_mtbdd_rule(self):
        tables = [TruthTable.random(3, seed=42, num_values=3),
                  TruthTable.random(3, seed=43, num_values=3)]
        fs = run_fs_shared(tables, rule=ReductionRule.MTBDD)
        _, bf_cost = brute_force_shared(tables, rule=ReductionRule.MTBDD)
        assert fs.mincost == bf_cost

    def test_python_engine(self):
        tables = [TruthTable.random(3, seed=44), TruthTable.random(3, seed=45)]
        assert (
            run_fs_shared(tables, engine="python").mincost
            == run_fs_shared(tables, engine="numpy").mincost
        )


class TestForest:
    def test_roundtrip(self):
        tables = [TruthTable.random(4, seed=50), TruthTable.random(4, seed=51)]
        forest = build_forest(tables, [2, 0, 3, 1])
        assert forest.to_truth_tables() == tables

    def test_mincost_matches_oracle(self):
        tables = [TruthTable.random(4, seed=52), TruthTable.random(4, seed=53)]
        order = [1, 3, 0, 2]
        forest = build_forest(tables, order)
        assert forest.mincost == sum(count_shared_subfunctions(tables, order))

    def test_roots_alias_shared_nodes(self):
        table = TruthTable.random(3, seed=54)
        forest = build_forest([table, table], [0, 1, 2])
        assert forest.roots[0] == forest.roots[1]

    def test_invalid_order(self):
        with pytest.raises(OrderingError):
            build_forest([TruthTable.random(2, seed=0)], [0, 0])

    def test_zdd_forest_roundtrip(self):
        tables = [TruthTable.random(3, seed=55), TruthTable.random(3, seed=56)]
        forest = build_forest(tables, [2, 1, 0], ReductionRule.ZDD)
        assert forest.to_truth_tables() == tables

    def test_size_counts_reachable_terminals(self):
        tables = [TruthTable.constant(2, 1)]
        forest = build_forest(tables, [0, 1])
        assert forest.size == 1  # just the T terminal


class TestOracle:
    def test_single_table_reduces_to_count_subfunctions(self):
        table = TruthTable.random(4, seed=60)
        order = [3, 1, 2, 0]
        assert count_shared_subfunctions([table], order) == count_subfunctions(
            table, order
        )

    def test_pooled_dedup(self):
        # Two outputs with identical subfunctions at a level share width.
        table = TruthTable.random(3, seed=61)
        order = [0, 1, 2]
        single = count_shared_subfunctions([table], order)
        doubled = count_shared_subfunctions([table, table], order)
        assert single == doubled
