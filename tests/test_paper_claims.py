"""Direct checks of every concrete claim in the paper's text.

Each test cites the claim it verifies.  These are the reproduction's
ground truth; EXPERIMENTS.md summarizes their outcomes.
"""

import math

import pytest

from repro.analysis import (
    fs_table_cells,
    gamma0,
    gamma1,
    gamma2_appendix_b,
    solve_table1,
    solve_table2,
    theorem13_constant,
)
from repro.core import (
    ReductionRule,
    build_diagram,
    mincost_by_split,
    opt_obdd,
    reconstruct_minimum_diagram,
    run_fs,
    run_fs_star,
    initial_state,
)
from repro.functions import (
    achilles_bad_order,
    achilles_bad_size,
    achilles_good_order,
    achilles_good_size,
    achilles_heel,
)
from repro.truth_table import TruthTable, count_subfunctions, obdd_size


class TestIntroductionClaims:
    """Sec. 1.1: the 2n+2 vs 2^{n+1} ordering gap."""

    @pytest.mark.parametrize("pairs", [1, 2, 3, 4, 5])
    def test_ordering_gap(self, pairs):
        table = achilles_heel(pairs)
        assert obdd_size(table, achilles_good_order(pairs)) == 2 * pairs + 2
        assert obdd_size(table, achilles_bad_order(pairs)) == 2 ** (pairs + 1)

    def test_good_ordering_is_globally_optimal(self):
        table = achilles_heel(3)
        assert run_fs(table).size == achilles_good_size(3)


class TestFigure1:
    """The two diagrams of Figure 1 (n = 6 variables, 3 pairs)."""

    def test_left_diagram_shape(self):
        table = achilles_heel(3)
        diagram = build_diagram(table, achilles_good_order(3))
        assert diagram.size == 8
        assert diagram.level_widths() == [1, 1, 1, 1, 1, 1]

    def test_right_diagram_shape(self):
        table = achilles_heel(3)
        diagram = build_diagram(table, achilles_bad_order(3))
        assert diagram.size == 16
        assert diagram.level_widths() == [1, 2, 4, 4, 2, 1]

    def test_example1_subfunction(self):
        """Example 1: following edges labelled 0,1,0 from the root of the
        right diagram (read order x1,x3,x5,...) reaches the node for the
        subfunction f|_{x1=0,x3=1,x5=0} = x4 (paper 1-indexed; our
        variable 3)."""
        table = achilles_heel(3)
        sub = table.restrict([(0, 0), (2, 1), (4, 0)])
        # remaining variables (old 1,3,5) re-indexed to (0,1,2): x4 -> 1
        assert sub == TruthTable.projection(3, 1)


class TestLemma3:
    """Cost at a level depends only on the set partition, not the order."""

    def test_width_invariant_under_block_permutations(self):
        # Fix variable 1 at the level directly above the bottom block
        # {2, 3}; Lemma 3 says its width is the same however the blocks
        # above ({0, 4}) and below ({2, 3}) are internally arranged.
        import itertools

        table = TruthTable.random(5, seed=1)
        widths_seen = set()
        for t_perm in itertools.permutations([0, 4]):
            for b_perm in itertools.permutations([2, 3]):
                order = list(t_perm) + [1] + list(b_perm)
                widths_seen.add(count_subfunctions(table, order)[2])
        assert len(widths_seen) == 1


class TestTheorem5:
    """FS produces FS([n]) in O*(3^n) time."""

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_measured_cells_equal_model(self, n):
        result = run_fs(TruthTable.random(n, seed=n))
        assert result.counters.table_cells == fs_table_cells(n)
        # within the polynomial envelope of 3^n
        assert result.counters.table_cells <= n * 3 ** n


class TestLemma8:
    """FS* composes from an arbitrary FS(<I...>)."""

    def test_composition_path_independence(self):
        # FS(I then J) == FS(I u J) when both computed optimally.
        tt = TruthTable.random(5, seed=2)
        base = initial_state(tt)
        via_two_steps = run_fs_star(run_fs_star(base, 0b00111), 0b11000)
        direct = run_fs(tt)
        # Two-step is constrained (bottom block fixed to {0,1,2}), so >=.
        assert via_two_steps.mincost >= direct.mincost
        # And equals the Lemma 9 split value at k=3 for the best K... for
        # THIS K it matches the per-split entry:
        check = mincost_by_split(tt, 3)
        assert via_two_steps.mincost == check.per_split[0b00111]


class TestLemma9:
    """The divide-and-conquer identity."""

    @pytest.mark.parametrize("seed", range(3))
    def test_identity(self, seed):
        tt = TruthTable.random(5, seed=10 + seed)
        reference = run_fs(tt).mincost
        for k in (1, 2, 3, 4):
            assert mincost_by_split(tt, k).mincost == reference


class TestTheorem1And10:
    """The quantum algorithm returns a minimum OBDD and its ordering."""

    def test_produces_minimum_obdd_and_ordering(self):
        tt = TruthTable.random(6, seed=20)
        result = opt_obdd(tt)
        fs = run_fs(tt)
        assert result.mincost == fs.mincost
        assert sum(count_subfunctions(tt, list(result.order))) == fs.mincost

    def test_output_diagram_always_valid(self):
        # "the OBDD produced by our algorithm is always a valid one for f"
        import random

        from repro.quantum import QuantumMinimumFinder

        tt = TruthTable.random(5, seed=21)
        finder = QuantumMinimumFinder(epsilon=0.2, mode="sampled",
                                      rng=random.Random(0))
        result = opt_obdd(tt, finder=finder)
        diagram = build_diagram(tt, list(result.order))
        assert diagram.to_truth_table() == tt


class TestRemark2:
    """MTBDD and ZDD adaptations."""

    def test_mtbdd_minimum(self):
        tt = TruthTable.random(4, seed=30, num_values=4)
        from repro.core import brute_force_optimal

        assert (
            run_fs(tt, rule=ReductionRule.MTBDD).mincost
            == brute_force_optimal(tt, rule=ReductionRule.MTBDD).mincost
        )

    def test_zdd_two_line_modification(self):
        tt = TruthTable.random(4, seed=31)
        from repro.core import brute_force_optimal

        assert (
            run_fs(tt, rule=ReductionRule.ZDD).mincost
            == brute_force_optimal(tt, rule=ReductionRule.ZDD).mincost
        )

    def test_zdd_beats_bdd_on_sparse(self):
        from repro.functions import random_sparse

        tt = random_sparse(6, 3, seed=32)
        zdd = run_fs(tt, rule=ReductionRule.ZDD).mincost
        bdd = run_fs(tt).mincost
        assert zdd <= bdd


class TestSection31:
    """Simple-case exponents."""

    def test_gamma0(self):
        assert gamma0()[0] == pytest.approx(2.98581, abs=5e-6)

    def test_gamma1_beats_gamma0_beats_classical(self):
        assert gamma1()[0] < gamma0()[0] < 3.0

    def test_appendix_b_gamma2(self):
        assert gamma2_appendix_b()[0] == pytest.approx(2.8569, abs=5e-5)


class TestAppendixC:
    """Tables 1 and 2 (full digit-level reproduction in
    test_analysis_parameters.py; headline constants here)."""

    def test_table1_headline(self):
        rows = solve_table1(6)
        assert rows[-1].base <= 2.83728 + 5e-6

    def test_table2_headline_theorem13(self):
        assert theorem13_constant(10) <= 2.77286 + 5e-6

    def test_improvement_chain(self):
        # 3 (classical) > 2.98581 > 2.97625 > 2.85690 > ... > 2.77286
        chain = [3.0, gamma0()[0], gamma1()[0]] + [
            r.base for r in solve_table1(6)[1:]
        ] + [theorem13_constant(10)]
        assert chain == sorted(chain, reverse=True)


class TestCorollary2:
    """Any poly-time-evaluable representation works as input."""

    def test_dnf_cnf_circuit_obdd_agree(self):
        from repro.bdd import BDD
        from repro.expr import CNF, DNF, parse, to_truth_table

        text = "x0 & x1 | ~x2"
        expr = parse(text)
        dnf = DNF.of([[(0, True), (1, True)], [(2, False)]])
        cnf = CNF.of([[(0, True), (2, False)], [(1, True), (2, False)]])
        mgr = BDD(3)
        node = mgr.apply_or(
            mgr.apply_and(mgr.var(0), mgr.var(1)), mgr.apply_not(mgr.var(2))
        )
        tables = [
            to_truth_table(expr),
            to_truth_table(dnf),
            to_truth_table(cnf),
            to_truth_table((mgr, node)),
        ]
        assert all(t == tables[0] for t in tables)
        results = {run_fs(t).mincost for t in tables}
        assert len(results) == 1
