"""Batch-hardening tests: per-item isolation, timeouts, retry, signals.

The contract under test (ISSUE acceptance criteria): a batch over a
corpus containing malformed and over-budget items returns a per-item
status (``ok``/``fallback``/``error``) for every input without losing
any other item's result; worker futures are drained, never abandoned;
transient disk-store failures are retried with exponential backoff; and
SIGINT/SIGTERM turn into cooperative cancellation at layer boundaries.
"""

import os
import signal
import threading

import pytest

from repro.analysis.counters import OperationCounters
from repro.core import (
    BatchError,
    BatchItem,
    Budget,
    FallbackResult,
    ResultCache,
    RetryPolicy,
    optimize_many,
    run_fs,
)
from repro.core.spec import ReductionRule
from repro.truth_table import TruthTable


def fake_clock(step=0.5):
    ticks = [0.0]

    def clock():
        ticks[0] += step
        return ticks[0]

    return clock


def multi_valued_table(n=4):
    """Rejected by every Boolean rule's initial_state (DimensionError)."""
    return TruthTable(n, [v % 4 for v in range(1 << n)])


# ----------------------------------------------------------------------
# failure isolation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 4])
class TestFailureIsolation:
    def test_malformed_item_does_not_poison_the_batch(self, jobs):
        good = [TruthTable.random(5, seed=s) for s in (1, 2, 3)]
        batch = [good[0], multi_valued_table(), good[1], good[2]]
        outcome = optimize_many(batch, jobs=jobs)
        assert [item.status for item in outcome.items] == [
            "ok", "error", "ok", "ok"]
        assert len(outcome.results) == 3
        assert len(outcome.errors) == 1
        error = outcome.errors[0]
        assert isinstance(error, BatchError)
        assert error.index == 1
        assert error.stage == "solve"
        assert error.error_type == "DimensionError"
        # The healthy items' results are the real optima.
        for item, table in zip(
                [outcome.items[0], outcome.items[2], outcome.items[3]],
                good):
            assert item.result.mincost == run_fs(table).mincost

    def test_items_align_with_inputs_and_results_stay_compact(self, jobs):
        batch = [multi_valued_table(), TruthTable.random(4, seed=9)]
        outcome = optimize_many(batch, jobs=jobs)
        assert [item.index for item in outcome.items] == [0, 1]
        assert isinstance(outcome.items[1], BatchItem)
        assert outcome.items[0].result is None
        assert outcome.items[1].error is None
        assert len(outcome.results) == 1

    def test_duplicate_of_failed_item_reports_without_resolving(self, jobs):
        batch = [multi_valued_table(), multi_valued_table()]
        outcome = optimize_many(batch, jobs=jobs)
        assert [item.status for item in outcome.items] == ["error", "error"]
        assert "duplicate of failed item 0" in outcome.errors[1].message

    def test_all_success_batch_keeps_legacy_shape(self, jobs):
        tables = [TruthTable.random(4, seed=s) for s in (1, 2)]
        outcome = optimize_many(tables, jobs=jobs)
        assert len(outcome.results) == len(tables)
        assert outcome.errors == []
        assert all(item.status == "ok" for item in outcome.items)


# ----------------------------------------------------------------------
# per-item budgets and the fallback ladder
# ----------------------------------------------------------------------

class TestBatchGovernance:
    def test_per_item_timeout_fails_only_the_slow_item(self):
        # A real (tiny) deadline: n=10 cannot finish in 50ms, n=3 can.
        batch = [TruthTable.random(10, seed=1), TruthTable.random(3, seed=2)]
        outcome = optimize_many(batch, per_item_timeout=0.05)
        assert outcome.items[0].status == "error"
        assert outcome.items[0].error.error_type == "BudgetExceeded"
        assert outcome.items[1].status == "ok"

    def test_per_item_timeout_with_fallback_degrades_instead(self):
        batch = [TruthTable.random(10, seed=1), TruthTable.random(3, seed=2)]
        outcome = optimize_many(batch, per_item_timeout=0.05,
                                fallback="fs,window,sift")
        slow = outcome.items[0]
        assert slow.status == "fallback"
        assert isinstance(slow.result, FallbackResult)
        assert not slow.result.exact
        assert slow.result.rung in ("window", "sift")
        assert sorted(slow.result.order) == list(range(10))
        fast = outcome.items[1]
        assert fast.status == "ok"
        assert fast.result.exact and fast.result.rung == "fs"

    def test_batch_budget_deadline_caps_item_shares(self):
        # The batch budget is already exhausted: every item must abort
        # promptly rather than run to completion.
        budget = Budget(deadline=1.0, clock=fake_clock(0.6))
        batch = [TruthTable.random(5, seed=s) for s in (1, 2)]
        outcome = optimize_many(batch, budget=budget)
        assert all(item.status == "error" for item in outcome.items)
        assert all(e.error_type == "BudgetExceeded" for e in outcome.errors)

    def test_cancellation_stops_every_item(self):
        budget = Budget()
        budget.cancel.set()
        batch = [TruthTable.random(5, seed=s) for s in (1, 2, 3)]
        outcome = optimize_many(batch, budget=budget, jobs=2)
        assert all(item.status == "error" for item in outcome.items)
        assert all("cancel" in e.message for e in outcome.errors)

    def test_invalid_ladder_rejected_up_front(self):
        from repro.errors import OrderingError

        with pytest.raises(OrderingError):
            optimize_many([TruthTable.random(3, seed=1)],
                          fallback="fs,teleport")


# ----------------------------------------------------------------------
# future draining
# ----------------------------------------------------------------------

class TestFutureDraining:
    def test_every_future_resolves_even_with_early_failures(self):
        # The poisoned item is a *representative* that fails at solve
        # time while later representatives are still queued/running; all
        # of them must still land in the outcome.
        batch = [multi_valued_table()] + [
            TruthTable.random(5, seed=s) for s in range(1, 8)
        ]
        outcome = optimize_many(batch, jobs=4)
        assert len(outcome.items) == len(batch)
        assert outcome.items[0].status == "error"
        assert all(item.status == "ok" for item in outcome.items[1:])
        assert len(outcome.results) == len(batch) - 1

    def test_jobs_invariance_with_failures(self):
        batch = [
            TruthTable.random(5, seed=1),
            multi_valued_table(),
            TruthTable.random(5, seed=2),
        ]
        sequential = optimize_many(batch, jobs=1)
        parallel = optimize_many(batch, jobs=4)
        assert ([i.status for i in sequential.items]
                == [i.status for i in parallel.items])
        assert ([r.order for r in sequential.results]
                == [r.order for r in parallel.results])


# ----------------------------------------------------------------------
# flaky-filesystem retry
# ----------------------------------------------------------------------

class TestDiskRetry:
    def test_cache_store_retries_transient_oserror(self, tmp_path,
                                                   monkeypatch):
        real_replace = os.replace
        failures = {"left": 2}

        def flaky_replace(src, dst):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient NFS blip")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", flaky_replace)
        cache = ResultCache(directory=str(tmp_path),
                            retry=RetryPolicy(sleep=lambda s: None))
        cache.store("deadbeef", {"kind": "ordering", "order": [0],
                                 "widths": [1], "mincost": 1})
        assert cache.stats.retries == 2
        monkeypatch.setattr(os, "replace", real_replace)
        assert cache.lookup("deadbeef") is not None

    def test_cache_store_without_policy_fails_fast(self, tmp_path,
                                                   monkeypatch):
        def always_fail(src, dst):
            raise OSError("permanently broken")

        monkeypatch.setattr(os, "replace", always_fail)
        cache = ResultCache(directory=str(tmp_path))
        with pytest.raises(OSError):
            cache.store("cafe", {"kind": "ordering"})

    def test_exhausted_retries_reraise(self, tmp_path, monkeypatch):
        def always_fail(src, dst):
            raise OSError("permanently broken")

        monkeypatch.setattr(os, "replace", always_fail)
        cache = ResultCache(directory=str(tmp_path),
                            retry=RetryPolicy(max_retries=2,
                                              sleep=lambda s: None))
        with pytest.raises(OSError):
            cache.store("cafe", {"kind": "ordering"})
        assert cache.stats.retries == 2

    def test_engine_checkpoint_write_retries_and_tallies(self, tmp_path,
                                                         monkeypatch):
        real_replace = os.replace
        failures = {"left": 1}

        def flaky_replace(src, dst):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient blip")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", flaky_replace)
        counters = OperationCounters()
        result = run_fs(TruthTable.random(4, seed=5), counters=counters,
                        checkpoint_dir=str(tmp_path / "ck"),
                        io_retry=RetryPolicy(sleep=lambda s: None))
        assert counters.extra["retries"] == 1
        monkeypatch.setattr(os, "replace", real_replace)
        assert result.mincost == run_fs(TruthTable.random(4, seed=5)).mincost

    def test_optimize_many_wires_io_retry_into_the_cache(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        policy = RetryPolicy(sleep=lambda s: None)
        optimize_many([TruthTable.random(3, seed=1)], cache=cache,
                      io_retry=policy)
        assert cache.retry is policy


# ----------------------------------------------------------------------
# signal handling
# ----------------------------------------------------------------------

class TestBatchSignals:
    def test_sigint_cancels_batch_cooperatively(self):
        # Deliver SIGINT from a timer while the batch runs; items then
        # finish as BudgetExceeded(cancelled) errors, already-complete
        # results are kept, and no traceback escapes.
        before = signal.getsignal(signal.SIGINT)
        batch = (
            [TruthTable.random(3, seed=1)]
            + [TruthTable.random(10, seed=s) for s in range(2, 8)]
        )
        timer = threading.Timer(
            0.15, lambda: os.kill(os.getpid(), signal.SIGINT))
        timer.start()
        try:
            outcome = optimize_many(batch, install_signal_handlers=True)
        finally:
            timer.cancel()
        assert signal.getsignal(signal.SIGINT) is before
        statuses = [item.status for item in outcome.items]
        assert len(statuses) == len(batch)
        # The tiny first item finishes before the signal; the n=10
        # solves (hundreds of ms each) run into the cancellation.
        assert statuses[0] == "ok"
        assert "error" in statuses
        cancelled = [e for e in outcome.errors if "cancel" in e.message]
        assert cancelled, "expected at least one cooperative cancellation"

    def test_handlers_not_installed_when_not_requested(self):
        before = signal.getsignal(signal.SIGINT)
        optimize_many([TruthTable.random(3, seed=1)])
        assert signal.getsignal(signal.SIGINT) is before
