"""Unit tests for ordering-sensitivity statistics."""

import pytest

from repro.analysis.sensitivity import (
    SensitivityReport,
    heuristic_percentile,
    ordering_sensitivity,
)
from repro.core import run_fs
from repro.errors import DimensionError
from repro.functions import achilles_heel, parity, threshold
from repro.truth_table import TruthTable


class TestExhaustive:
    def test_achilles_extremes(self):
        report = ordering_sensitivity(achilles_heel(3))
        assert report.exhaustive
        assert report.orderings_examined == 720
        assert report.minimum == 6   # figure 1 good order, internal nodes
        assert report.maximum == 14  # figure 1 bad order

    def test_symmetric_functions_are_insensitive(self):
        for table in (parity(5), threshold(5, 2)):
            report = ordering_sensitivity(table)
            assert report.spread == 1.0
            assert report.stddev == 0.0

    def test_minimum_equals_fs_optimum(self):
        table = TruthTable.random(5, seed=1)
        report = ordering_sensitivity(table)
        assert report.minimum == run_fs(table).mincost

    def test_large_n_rejected(self):
        with pytest.raises(DimensionError):
            ordering_sensitivity(TruthTable.random(9, seed=0))

    def test_zero_vars_rejected(self):
        with pytest.raises(DimensionError):
            ordering_sensitivity(TruthTable(0, [1]))


class TestSampled:
    def test_sampled_brackets_truth(self):
        table = TruthTable.random(6, seed=2)
        exhaustive = ordering_sensitivity(table)
        sampled = ordering_sensitivity(table, sample=100, seed=0)
        assert not sampled.exhaustive
        assert exhaustive.minimum <= sampled.minimum
        assert sampled.maximum <= exhaustive.maximum

    def test_sample_includes_natural_order(self):
        from repro.truth_table import count_subfunctions

        table = achilles_heel(3)  # natural order is optimal
        sampled = ordering_sensitivity(table, sample=1, seed=3)
        assert sampled.minimum == sum(
            count_subfunctions(table, list(range(6)))
        )

    def test_sample_validation(self):
        with pytest.raises(DimensionError):
            ordering_sensitivity(TruthTable.random(4, seed=0), sample=0)

    def test_reproducible(self):
        table = TruthTable.random(7, seed=4)
        a = ordering_sensitivity(table, sample=30, seed=5)
        b = ordering_sensitivity(table, sample=30, seed=5)
        assert (a.minimum, a.maximum, a.mean) == (b.minimum, b.maximum, b.mean)


class TestPercentile:
    def test_optimum_beats_everything(self):
        table = achilles_heel(3)
        optimum = run_fs(table).mincost
        assert heuristic_percentile(table, optimum, sample=50, seed=0) == 1.0

    def test_terrible_result_beats_nothing(self):
        table = achilles_heel(3)
        assert heuristic_percentile(table, 10 ** 6, sample=50, seed=0) == 0.0

    def test_monotone_in_size(self):
        table = TruthTable.random(6, seed=6)
        p_small = heuristic_percentile(table, 10, sample=80, seed=7)
        p_large = heuristic_percentile(table, 30, sample=80, seed=7)
        assert p_small >= p_large
