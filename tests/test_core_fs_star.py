"""Unit tests for FS* (Lemma 8, the composable variant)."""

import pytest

from repro._bitops import bits_of, mask_of, popcount, subsets_of_size
from repro.analysis.complexity import fs_star_table_cells
from repro.analysis.counters import OperationCounters
from repro.core import (
    ReductionRule,
    fs_star_levels,
    initial_state,
    run_fs,
    run_fs_star,
)
from repro.errors import DimensionError
from repro.truth_table import TruthTable, count_subfunctions


class TestFromEmptyBase:
    def test_full_run_equals_fs(self):
        tt = TruthTable.random(5, seed=1)
        base = initial_state(tt)
        final = run_fs_star(base, 0b11111)
        assert final.mincost == run_fs(tt).mincost

    def test_empty_j_is_identity(self):
        tt = TruthTable.random(3, seed=2)
        base = initial_state(tt)
        assert run_fs_star(base, 0) is base

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_levels_are_constrained_optima(self, k):
        # FS*(upto=k) yields MINCOST_K for every K: check against a chain
        # minimum computed by brute force over orderings of K.
        import itertools

        tt = TruthTable.random(4, seed=3)
        base = initial_state(tt)
        levels = fs_star_levels(base, 0b1111, upto=k)
        for kmask, state in levels.items():
            members = bits_of(kmask)
            best = None
            for perm in itertools.permutations(members):
                order = [v for v in range(4) if v not in perm] + list(
                    reversed(perm)
                )
                widths = count_subfunctions(tt, order)
                cost = sum(widths[4 - len(perm):])
                best = cost if best is None else min(best, cost)
            assert state.mincost == best


class TestFromNonEmptyBase:
    def test_extension_respects_base_chain(self):
        # Extending {0} by {1,2}: result mincost must be the constrained
        # minimum over orderings whose bottom variable is 0.
        import itertools

        tt = TruthTable.random(3, seed=4)
        from repro.core import compact

        base = compact(initial_state(tt), 0)
        final = run_fs_star(base, 0b110)
        best = None
        for perm in itertools.permutations([1, 2]):
            order = list(reversed(perm)) + [0]
            order = [v for v in range(3) if v not in order] + order
            cost = sum(count_subfunctions(tt, order))
            best = cost if best is None else min(best, cost)
        assert final.mincost == best

    def test_overlap_rejected(self):
        tt = TruthTable.random(3, seed=5)
        from repro.core import compact

        base = compact(initial_state(tt), 1)
        with pytest.raises(DimensionError):
            run_fs_star(base, 0b010)

    def test_out_of_range_mask_rejected(self):
        tt = TruthTable.random(3, seed=6)
        base = initial_state(tt)
        with pytest.raises(DimensionError):
            run_fs_star(base, 0b11000)

    def test_upto_out_of_range(self):
        tt = TruthTable.random(3, seed=7)
        with pytest.raises(ValueError):
            fs_star_levels(initial_state(tt), 0b111, upto=4)


class TestLemma7:
    def test_recurrence_on_every_subset(self):
        # MINCOST_(I, J) computed by FS* equals the Lemma 7 minimum over
        # last-placed variables.
        tt = TruthTable.random(4, seed=8)
        base = initial_state(tt)
        j_mask = 0b1111
        all_levels = {}
        for k in range(popcount(j_mask) + 1):
            all_levels.update(fs_star_levels(base, j_mask, upto=k))
        from repro.core import compact

        for kmask, state in all_levels.items():
            if kmask == 0:
                continue
            candidates = [
                compact(all_levels[kmask & ~(1 << i)], i).mincost
                for i in bits_of(kmask)
            ]
            assert state.mincost == min(candidates)


class TestComplexity:
    def test_cell_count_closed_form(self):
        tt = TruthTable.random(5, seed=9)
        from repro.core import compact

        base = compact(initial_state(tt), 0)
        counters = OperationCounters()
        run_fs_star(base, 0b11110, counters=counters)
        assert counters.table_cells == fs_star_table_cells(5, 1, 4)

    def test_partial_run_cheaper(self):
        tt = TruthTable.random(5, seed=10)
        base = initial_state(tt)
        full = OperationCounters()
        partial = OperationCounters()
        fs_star_levels(base, 0b11111, counters=full)
        fs_star_levels(base, 0b11111, counters=partial, upto=2)
        assert partial.table_cells < full.table_cells


class TestRules:
    @pytest.mark.parametrize("rule", [ReductionRule.BDD, ReductionRule.ZDD])
    def test_full_run_equals_fs_for_rule(self, rule):
        tt = TruthTable.random(4, seed=11)
        base = initial_state(tt, rule)
        assert (
            run_fs_star(base, 0b1111, rule).mincost
            == run_fs(tt, rule=rule).mincost
        )
