"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.truth_table import TruthTable


@pytest.fixture
def rng():
    return random.Random(20260706)


def random_tables(count: int, max_n: int = 5, seed: int = 0, min_n: int = 1):
    """Deterministic batch of random truth tables for parametrization."""
    rnd = random.Random(seed)
    tables = []
    for index in range(count):
        n = rnd.randint(min_n, max_n)
        tables.append(TruthTable.random(n, seed=seed * 1000 + index))
    return tables


def pytest_make_parametrize_id(config, val, argname):
    if isinstance(val, TruthTable):
        return f"tt(n={val.n},h={hash(val) & 0xffff:04x})"
    return None
