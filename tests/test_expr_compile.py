"""Unit tests for symbolic compilation (representations -> BDD nodes)."""

import pytest

from repro.bdd import BDD
from repro.errors import EvaluationError
from repro.expr import (
    CNF,
    DNF,
    Circuit,
    compile_circuit,
    compile_cnf,
    compile_dnf,
    compile_expr,
    compile_to_bdd,
    parse,
    ripple_carry_adder_circuit,
    to_truth_table,
)
from repro.functions import adder_bit
from repro.truth_table import TruthTable


class TestCompileExpr:
    @pytest.mark.parametrize("text", [
        "x0 & x1",
        "x0 | ~x1 ^ x2",
        "(x0 | x1) & (x2 | x3)",
        "~(x0 & x1) ^ (x2 | ~x3)",
        "1 & x0 | 0",
    ])
    def test_matches_tabulation(self, text):
        expr = parse(text)
        n = max(expr.num_vars, 1)
        manager = BDD(n)
        root = compile_expr(manager, expr)
        assert manager.to_truth_table(root) == to_truth_table(expr, n)

    def test_constants(self):
        manager = BDD(2)
        assert compile_expr(manager, parse("1")) == manager.true
        assert compile_expr(manager, parse("0")) == manager.false

    def test_unknown_node_type(self):
        with pytest.raises(TypeError):
            compile_expr(BDD(1), object())


class TestCompileNormalForms:
    def test_dnf(self):
        dnf = DNF.of([[(0, True), (2, False)], [(1, True)]])
        manager = BDD(3)
        root = compile_dnf(manager, dnf)
        assert manager.to_truth_table(root) == to_truth_table(dnf, 3)

    def test_empty_dnf(self):
        manager = BDD(2)
        assert compile_dnf(manager, DNF.of([])) == manager.false

    def test_cnf(self):
        cnf = CNF.of([[(0, True), (1, False)], [(2, True)]])
        manager = BDD(3)
        root = compile_cnf(manager, cnf)
        assert manager.to_truth_table(root) == to_truth_table(cnf, 3)

    def test_empty_cnf(self):
        manager = BDD(2)
        assert compile_cnf(manager, CNF.of([])) == manager.true

    def test_dnf_cnf_duality(self):
        # DNF of f and CNF of f must compile to the same node.
        manager = BDD(2)
        dnf = DNF.of([[(0, True), (1, True)]])          # x0 & x1
        cnf = CNF.of([[(0, True)], [(1, True)]])        # x0 & x1
        assert compile_dnf(manager, dnf) == compile_cnf(manager, cnf)


class TestCompileCircuit:
    def test_ripple_adder_matches_reference(self):
        for output in range(4):
            circuit = ripple_carry_adder_circuit(3, output)
            manager = BDD(6)
            root = compile_circuit(manager, circuit)
            assert manager.to_truth_table(root) == adder_bit(3, output)

    def test_alternate_output_wire(self):
        circuit = Circuit(inputs=["a", "b"], output="f")
        circuit.add_gate("and", "f", ["a", "b"])
        circuit.add_gate("or", "g", ["a", "b"])
        manager = BDD(2)
        root = compile_circuit(manager, circuit, output="g")
        assert manager.to_truth_table(root) == TruthTable.from_callable(
            2, lambda a, b: a | b
        )

    def test_wide_gates(self):
        circuit = Circuit(inputs=["a", "b", "c"], output="f")
        circuit.add_gate("nand", "f", ["a", "b", "c"])
        manager = BDD(3)
        root = compile_circuit(manager, circuit)
        assert manager.to_truth_table(root) == TruthTable.from_callable(
            3, lambda a, b, c: 1 - (a & b & c)
        )

    def test_undriven_output(self):
        circuit = Circuit(inputs=["a"], output="ghost")
        with pytest.raises(EvaluationError):
            compile_circuit(BDD(1), circuit)

    def test_symbolic_avoids_tabulation_blowup(self):
        # A wide AND: BDD stays linear even though 2^n is large.
        n = 18
        circuit = Circuit(inputs=[f"x{i}" for i in range(n)], output="f")
        circuit.add_gate("and", "f", [f"x{i}" for i in range(n)])
        manager = BDD(n)
        root = compile_circuit(manager, circuit)
        assert manager.size(root, include_terminals=False) == n


class TestDispatch:
    def test_compile_to_bdd_dispatches(self):
        manager = BDD(2)
        for source in (
            parse("x0 & x1"),
            DNF.of([[(0, True), (1, True)]]),
            CNF.of([[(0, True)], [(1, True)]]),
        ):
            root = compile_to_bdd(manager, source)
            assert manager.to_truth_table(root) == TruthTable.from_callable(
                2, lambda a, b: a & b
            )

    def test_unknown_source(self):
        with pytest.raises(TypeError):
            compile_to_bdd(BDD(1), 42)
