"""Unit tests for the benchmark function families and generators."""

import itertools
import math

import pytest

from repro.errors import DimensionError
from repro.functions import (
    achilles_bad_order,
    achilles_bad_size,
    achilles_good_order,
    achilles_good_size,
    achilles_heel,
    adder_bit,
    all_k_subsets,
    cliques_of_random_graph,
    comparator,
    conjunction_of_pairs,
    equality,
    family_truth_table,
    hidden_weighted_bit,
    interval,
    majority,
    multiplexer,
    multiplication_bit,
    parity,
    path_independent_sets,
    path_matchings,
    random_boolean,
    random_dnf_function,
    random_multivalued,
    random_ordering,
    random_sparse,
    sparse_random_family,
    threshold,
)
from repro.truth_table import TruthTable, obdd_size


class TestAchilles:
    @pytest.mark.parametrize("pairs", [1, 2, 3, 4])
    def test_closed_form_sizes(self, pairs):
        table = achilles_heel(pairs)
        assert obdd_size(table, achilles_good_order(pairs)) == achilles_good_size(pairs)
        assert obdd_size(table, achilles_bad_order(pairs)) == achilles_bad_size(pairs)

    def test_semantics(self):
        table = achilles_heel(2)
        assert table(1, 1, 0, 0) == 1
        assert table(1, 0, 0, 1) == 0
        assert table(0, 0, 1, 1) == 1

    def test_needs_a_pair(self):
        with pytest.raises(DimensionError):
            achilles_heel(0)

    def test_conjunction_of_pairs_generalizes(self):
        table = conjunction_of_pairs([(0, 1), (2, 3)], 4)
        assert table == achilles_heel(2)

    def test_conjunction_range_check(self):
        with pytest.raises(DimensionError):
            conjunction_of_pairs([(0, 4)], 4)


class TestSymmetricFamilies:
    def test_parity_semantics(self):
        table = parity(4)
        for bits in itertools.product((0, 1), repeat=4):
            assert table(*bits) == sum(bits) % 2

    def test_threshold_counts(self):
        table = threshold(5, 3)
        assert table.count_ones() == sum(math.comb(5, k) for k in range(3, 6))

    def test_threshold_extremes(self):
        assert threshold(4, 0) == TruthTable.constant(4, 1)
        assert threshold(4, 5) == TruthTable.constant(4, 0)

    def test_threshold_validation(self):
        with pytest.raises(DimensionError):
            threshold(3, 5)

    def test_majority_is_threshold(self):
        assert majority(5) == threshold(5, 3)

    def test_symmetric_functions_ordering_insensitive(self):
        table = threshold(4, 2)
        sizes = {obdd_size(table, list(p)) for p in itertools.permutations(range(4))}
        assert len(sizes) == 1


class TestHardFunctions:
    def test_hwb_semantics(self):
        table = hidden_weighted_bit(4)
        assert table(0, 0, 0, 0) == 0  # weight 0 -> 0
        assert table(1, 0, 0, 0) == 1  # weight 1 -> x_1 (0-indexed var 0)
        assert table(0, 1, 0, 1) == 1  # weight 2 -> var index 1
        assert table(1, 0, 1, 0) == 0

    def test_multiplication_middle_bit_semantics(self):
        bits = 3
        table = multiplication_bit(bits, bits - 1)
        for x in range(1 << bits):
            for y in range(1 << bits):
                packed = x | (y << bits)
                assert table.evaluate_packed(packed) == ((x * y) >> (bits - 1)) & 1

    def test_multiplication_is_ordering_hard(self):
        # Even the best ordering of the 3x3 middle bit is larger than
        # parity on the same variable count.
        from repro.core import run_fs

        table = multiplication_bit(3, 2)
        assert run_fs(table).mincost > run_fs(parity(6)).mincost

    def test_output_range_validation(self):
        with pytest.raises(DimensionError):
            multiplication_bit(3, 6)


class TestArithmeticFunctions:
    def test_adder_bit_semantics(self):
        bits = 3
        for output in range(bits + 1):
            table = adder_bit(bits, output)
            for x in range(1 << bits):
                for y in range(1 << bits):
                    packed = x | (y << bits)
                    assert table.evaluate_packed(packed) == ((x + y) >> output) & 1

    def test_adder_validation(self):
        with pytest.raises(DimensionError):
            adder_bit(3, 4)

    def test_comparator_semantics(self):
        table = comparator(2)
        for x in range(4):
            for y in range(4):
                assert table.evaluate_packed(x | (y << 2)) == int(x < y)

    def test_equality_counts(self):
        assert equality(3).count_ones() == 8

    def test_interleaving_beats_separation_for_comparator(self):
        table = comparator(3)
        separated = list(range(6))
        interleaved = [0, 3, 1, 4, 2, 5]
        assert obdd_size(table, interleaved) < obdd_size(table, separated)

    def test_interval(self):
        table = interval(4, 3, 11)
        assert table.count_ones() == 9
        with pytest.raises(DimensionError):
            interval(3, 5, 2)


class TestMultiplexer:
    def test_semantics(self):
        table = multiplexer(2)
        # vars: s0,s1 then d0..d3; data var k+sel selected
        assert table(0, 0, 1, 0, 0, 0) == 1
        assert table(1, 0, 0, 1, 0, 0) == 1
        assert table(0, 1, 0, 0, 1, 0) == 1
        assert table(1, 1, 0, 0, 0, 1) == 1
        assert table(1, 1, 1, 1, 1, 0) == 0

    def test_size_guard(self):
        with pytest.raises(DimensionError):
            multiplexer(5)


class TestRandomGenerators:
    def test_random_boolean_reproducible(self):
        assert random_boolean(5, seed=3) == random_boolean(5, seed=3)

    def test_random_sparse_exact_count(self):
        table = random_sparse(6, 5, seed=1)
        assert table.count_ones() == 5

    def test_random_sparse_validation(self):
        with pytest.raises(DimensionError):
            random_sparse(3, 9, seed=0)

    def test_random_multivalued_range(self):
        table = random_multivalued(5, 4, seed=2)
        assert 0 <= table.values.min() and table.values.max() < 4

    def test_random_dnf_is_boolean(self):
        table = random_dnf_function(6, 4, 3, seed=3)
        assert table.is_boolean()

    def test_random_ordering_is_permutation(self):
        order = random_ordering(7, seed=4)
        assert sorted(order) == list(range(7))


class TestSetFamilies:
    def test_family_truth_table_membership(self):
        table = family_truth_table(3, [{0, 2}, set()])
        assert table.evaluate_packed(0b101) == 1
        assert table.evaluate_packed(0) == 1
        assert table.evaluate_packed(0b111) == 0

    def test_family_validation(self):
        with pytest.raises(DimensionError):
            family_truth_table(2, [{3}])

    def test_all_k_subsets_count(self):
        assert len(all_k_subsets(6, 3)) == math.comb(6, 3)

    def test_path_independent_sets_fibonacci(self):
        # |IS(P_n)| = Fib(n+2): 1, 2, 3, 5, 8, 13, ...
        counts = [len(path_independent_sets(n)) for n in range(7)]
        assert counts == [1, 2, 3, 5, 8, 13, 21]

    def test_path_independent_sets_valid(self):
        for s in path_independent_sets(6):
            assert all(v + 1 not in s for v in s)

    def test_path_matchings_valid(self):
        for m in path_matchings(6):
            assert all(e + 1 not in m for e in m)

    def test_cliques_are_cliques(self):
        fams = cliques_of_random_graph(6, edge_probability=0.5, seed=5)
        assert set() in fams
        assert all(len(c) <= 6 for c in fams)

    def test_sparse_random_family_distinct(self):
        family = sparse_random_family(5, 12, seed=6)
        assert len({frozenset(s) for s in family}) == 12

    def test_sparse_random_family_validation(self):
        with pytest.raises(DimensionError):
            sparse_random_family(2, 5, seed=0)
