"""Unit tests for TruthTable and the width/size oracles."""

import itertools

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.truth_table import TruthTable, count_subfunctions, obdd_size


class TestConstruction:
    def test_from_callable_and(self):
        tt = TruthTable.from_callable(2, lambda a, b: a & b)
        assert list(tt.values) == [0, 0, 0, 1]

    def test_from_callable_bit_order(self):
        # index bit i == variable i: f = x0 has pattern 0101...
        tt = TruthTable.from_callable(3, lambda a, b, c: a)
        assert list(tt.values) == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_from_evaluator(self):
        tt = TruthTable.from_evaluator(3, lambda a: a % 2)
        assert tt == TruthTable.projection(3, 0)

    def test_from_minterms(self):
        tt = TruthTable.from_minterms(3, [0, 7])
        assert tt.count_ones() == 2
        assert tt(0, 0, 0) == 1 and tt(1, 1, 1) == 1

    def test_from_minterms_out_of_range(self):
        with pytest.raises(DimensionError):
            TruthTable.from_minterms(2, [4])

    def test_constant(self):
        assert TruthTable.constant(3, 1).count_ones() == 8
        assert TruthTable.constant(3, 0).count_ones() == 0

    def test_projection_out_of_range(self):
        with pytest.raises(DimensionError):
            TruthTable.projection(3, 3)

    def test_wrong_length_rejected(self):
        with pytest.raises(DimensionError):
            TruthTable(2, [0, 1, 0])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(1, [-1, 0])

    def test_random_seeded_reproducible(self):
        assert TruthTable.random(4, seed=5) == TruthTable.random(4, seed=5)

    def test_random_multivalued_range(self):
        tt = TruthTable.random(4, seed=1, num_values=5)
        assert 0 <= tt.values.min() and tt.values.max() < 5

    def test_values_read_only(self):
        tt = TruthTable.constant(2, 0)
        with pytest.raises(ValueError):
            tt.values[0] = 1

    def test_zero_variables(self):
        tt = TruthTable(0, [1])
        assert tt() == 1


class TestQueries:
    def test_call_arity_checked(self):
        with pytest.raises(DimensionError):
            TruthTable.constant(2, 0)(1)

    def test_evaluate_packed(self):
        tt = TruthTable.from_callable(2, lambda a, b: a ^ b)
        assert tt.evaluate_packed(0b01) == 1
        assert tt.evaluate_packed(0b11) == 0

    def test_is_boolean(self):
        assert TruthTable(1, [0, 1]).is_boolean()
        assert not TruthTable(1, [0, 2]).is_boolean()

    def test_ones(self):
        tt = TruthTable.from_minterms(3, [1, 6])
        assert tt.ones() == [1, 6]

    def test_num_distinct_values(self):
        assert TruthTable(2, [0, 1, 2, 1]).num_distinct_values() == 3


class TestCofactors:
    def test_cofactor_values(self):
        tt = TruthTable.from_callable(2, lambda a, b: a & b)
        assert list(tt.cofactor(0, 1).values) == [0, 1]  # f|x0=1 == x1
        assert list(tt.cofactor(0, 0).values) == [0, 0]

    def test_cofactor_reindexes(self):
        tt = TruthTable.from_callable(3, lambda a, b, c: b)
        # restricting x0 leaves g(y0, y1) = y0 (old x1)
        assert tt.cofactor(0, 0) == TruthTable.projection(2, 0)

    def test_restrict_multiple(self):
        tt = TruthTable.from_callable(3, lambda a, b, c: (a & b) | c)
        restricted = tt.restrict([(0, 1), (2, 0)])
        assert restricted == TruthTable.projection(1, 0)

    def test_depends_on(self):
        tt = TruthTable.from_callable(3, lambda a, b, c: a ^ c)
        assert tt.depends_on(0) and tt.depends_on(2)
        assert not tt.depends_on(1)

    def test_support(self):
        tt = TruthTable.from_callable(4, lambda a, b, c, d: b | d)
        assert tt.support() == [1, 3]

    def test_support_constant(self):
        assert TruthTable.constant(3, 1).support() == []


class TestPermute:
    def test_identity(self):
        tt = TruthTable.random(4, seed=2)
        assert tt.permute([0, 1, 2, 3]) == tt

    def test_swap_semantics(self):
        tt = TruthTable.from_callable(2, lambda a, b: a)
        swapped = tt.permute([1, 0])  # new var 0 = old var 1
        assert swapped == TruthTable.from_callable(2, lambda a, b: b)

    def test_permute_is_action(self):
        # permute(p) then permute(q) == permute(p o q) composed correctly
        tt = TruthTable.random(4, seed=3)
        p = [2, 0, 3, 1]
        q = [1, 3, 0, 2]
        left = tt.permute(p).permute(q)
        composed = [p[q[i]] for i in range(4)]
        assert left == tt.permute(composed)

    def test_invalid_permutation(self):
        with pytest.raises(DimensionError):
            TruthTable.random(3, seed=0).permute([0, 0, 1])

    def test_evaluation_consistency(self):
        tt = TruthTable.random(3, seed=4)
        perm = [2, 0, 1]
        g = tt.permute(perm)
        for bits in itertools.product((0, 1), repeat=3):
            x = [0] * 3
            for i, y in enumerate(bits):
                x[perm[i]] = y
            assert g(*bits) == tt(*x)


class TestAlgebra:
    def test_and_or_xor_invert(self):
        a = TruthTable.projection(2, 0)
        b = TruthTable.projection(2, 1)
        assert (a & b) == TruthTable.from_callable(2, lambda x, y: x & y)
        assert (a | b) == TruthTable.from_callable(2, lambda x, y: x | y)
        assert (a ^ b) == TruthTable.from_callable(2, lambda x, y: x ^ y)
        assert (~a) == TruthTable.from_callable(2, lambda x, y: 1 - x)

    def test_arity_mismatch(self):
        with pytest.raises(DimensionError):
            TruthTable.constant(2, 0) & TruthTable.constant(3, 0)

    def test_de_morgan(self):
        a = TruthTable.random(3, seed=10)
        b = TruthTable.random(3, seed=11)
        assert ~(a & b) == (~a | ~b)

    def test_hash_consistent_with_eq(self):
        a = TruthTable.random(3, seed=12)
        b = TruthTable(3, list(a.values))
        assert a == b and hash(a) == hash(b)


class TestWidthOracle:
    def test_achilles_good(self):
        tt = TruthTable.from_callable(
            6, lambda a, b, c, d, e, f: (a & b) | (c & d) | (e & f)
        )
        assert count_subfunctions(tt, [0, 1, 2, 3, 4, 5]) == [1, 1, 1, 1, 1, 1]

    def test_achilles_bad_matches_figure1(self):
        tt = TruthTable.from_callable(
            6, lambda a, b, c, d, e, f: (a & b) | (c & d) | (e & f)
        )
        assert count_subfunctions(tt, [0, 2, 4, 1, 3, 5]) == [1, 2, 4, 4, 2, 1]

    def test_constant_zero_widths(self):
        assert count_subfunctions(TruthTable.constant(3, 0), [0, 1, 2]) == [0, 0, 0]

    def test_single_variable(self):
        assert count_subfunctions(TruthTable.projection(1, 0), [0]) == [1]

    def test_parity_widths(self):
        tt = TruthTable.from_callable(4, lambda a, b, c, d: a ^ b ^ c ^ d)
        assert count_subfunctions(tt, [0, 1, 2, 3]) == [1, 2, 2, 2]

    def test_invalid_order(self):
        with pytest.raises(DimensionError):
            count_subfunctions(TruthTable.constant(2, 0), [0, 0])

    def test_obdd_size_terminal_count(self):
        const = TruthTable.constant(3, 1)
        assert obdd_size(const, [0, 1, 2]) == 1  # one terminal only
        assert obdd_size(const, [0, 1, 2], include_terminals=False) == 0

    def test_obdd_size_includes_both_terminals(self):
        tt = TruthTable.projection(2, 0)
        assert obdd_size(tt, [0, 1]) == 3
        assert obdd_size(tt, [0, 1], include_terminals=False) == 1
