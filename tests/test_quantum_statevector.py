"""Unit tests for the explicit statevector Grover simulator."""

import math
import random

import numpy as np
import pytest

from repro.quantum import (
    diffusion,
    grover_iterate,
    grover_search,
    grover_state,
    measured_success_probability,
    optimal_iterations,
    oracle_phase_flip,
    statevector_minimum,
    success_probability,
    uniform_state,
)


class TestPrimitives:
    def test_uniform_state_normalized(self):
        state = uniform_state(10)
        assert np.abs(state).max() == pytest.approx(1 / math.sqrt(10))
        assert np.vdot(state, state).real == pytest.approx(1.0)

    def test_uniform_state_validation(self):
        with pytest.raises(ValueError):
            uniform_state(0)

    def test_oracle_flips_only_marked(self):
        state = uniform_state(8)
        flipped = oracle_phase_flip(state, [3, 5])
        assert flipped[3] == -state[3] and flipped[5] == -state[5]
        assert flipped[0] == state[0]

    def test_oracle_is_unitary(self):
        state = uniform_state(8)
        flipped = oracle_phase_flip(state, [1])
        assert np.vdot(flipped, flipped).real == pytest.approx(1.0)

    def test_diffusion_preserves_uniform(self):
        state = uniform_state(16)
        assert np.allclose(diffusion(state), state)

    def test_diffusion_is_involution(self):
        rng = np.random.default_rng(0)
        state = rng.normal(size=12) + 1j * rng.normal(size=12)
        state /= np.linalg.norm(state)
        assert np.allclose(diffusion(diffusion(state)), state)

    def test_iteration_preserves_norm(self):
        state = uniform_state(32)
        for _ in range(5):
            state = grover_iterate(state, [7])
            assert np.vdot(state, state).real == pytest.approx(1.0)


class TestClosedFormAgreement:
    @pytest.mark.parametrize("num_items,num_marked", [
        (8, 1), (16, 1), (16, 4), (32, 3), (64, 1), (10, 2), (7, 1),
    ])
    def test_matches_formula_for_all_iteration_counts(self, num_items, num_marked):
        marked = list(range(num_marked))
        for iterations in range(8):
            measured = measured_success_probability(num_items, marked, iterations)
            formula = success_probability(num_items, num_marked, iterations)
            assert measured == pytest.approx(formula, abs=1e-9)

    def test_amplitude_uniform_within_classes(self):
        # All marked amplitudes equal; all unmarked amplitudes equal.
        state = grover_state(32, [3, 17, 29], 4)
        marked = {3, 17, 29}
        marked_amps = {complex(round(state[i].real, 12)) for i in marked}
        other_amps = {complex(round(state[i].real, 12))
                      for i in range(32) if i not in marked}
        assert len(marked_amps) == 1
        assert len(other_amps) == 1

    def test_optimal_iterations_nearly_certain(self):
        j = optimal_iterations(256, 1)
        assert measured_success_probability(256, [123 % 256], j) > 0.99


class TestSearch:
    def test_finds_unique_target(self):
        hits = sum(
            grover_search(64, lambda x: x == 42, 1, random.Random(s)).succeeded
            for s in range(30)
        )
        assert hits >= 29

    def test_oracle_call_count(self):
        run = grover_search(64, lambda x: x == 1, 1, random.Random(0))
        assert run.oracle_calls == run.iterations + 1
        assert run.iterations == optimal_iterations(64, 1)

    def test_no_marked_items(self):
        run = grover_search(16, lambda x: False, 0, random.Random(0))
        assert not run.succeeded
        assert run.oracle_calls == 1

    def test_marked_count_checked(self):
        with pytest.raises(ValueError):
            grover_search(8, lambda x: x < 2, 3)

    def test_multiple_targets(self):
        run = grover_search(64, lambda x: x % 16 == 0, 4, random.Random(1))
        assert run.succeeded


class TestStatevectorMinimum:
    def test_finds_minimum(self):
        rng = random.Random(5)
        values = [rng.randint(10, 99) for _ in range(24)]
        values[13] = 1
        hits = sum(
            statevector_minimum(values, random.Random(s)).succeeded
            for s in range(20)
        )
        assert hits >= 18

    def test_single_value(self):
        out = statevector_minimum([7], random.Random(0))
        assert out.index == 0 and out.succeeded

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            statevector_minimum([])

    def test_threshold_updates_monotone(self):
        # Each successful update strictly lowers the threshold, so the
        # number of updates is at most the number of distinct values.
        values = [9, 3, 7, 3, 1, 9, 5, 1]
        out = statevector_minimum(values, random.Random(2))
        assert out.threshold_updates <= len(set(values))

    def test_agrees_with_closed_form_simulator(self):
        # Both layers of the substitution find the same minima w.h.p.
        from repro.quantum import durr_hoyer

        rng = random.Random(6)
        values = [rng.randint(0, 50) for _ in range(16)]
        sv = statevector_minimum(values, random.Random(7))
        dh = durr_hoyer(values, rng=random.Random(7), epsilon=0.01)
        assert values[sv.index] == values[dh.index] == min(values)


class TestBBHTSearch:
    def test_finds_single_target_unknown_count(self):
        import random as rnd_mod

        from repro.quantum import bbht_search

        hits = sum(
            bbht_search(64, lambda x: x == 17,
                        rnd_mod.Random(s)).succeeded
            for s in range(30)
        )
        assert hits >= 28

    def test_multiple_targets(self):
        import random as rnd_mod

        from repro.quantum import bbht_search

        run = bbht_search(128, lambda x: x % 32 == 5, rnd_mod.Random(1))
        assert run.succeeded and run.outcome % 32 == 5

    def test_no_marked_items_fails_within_budget(self):
        import random as rnd_mod

        from repro.quantum import bbht_search

        run = bbht_search(32, lambda x: False, rnd_mod.Random(2))
        assert not run.succeeded
        assert run.oracle_calls <= int(45 * 32 ** 0.5) + 10

    def test_query_scaling_sqrt(self):
        import math
        import random as rnd_mod
        import statistics

        from repro.quantum import bbht_search

        means = []
        for num_items in (16, 64, 256):
            runs = [
                bbht_search(num_items, lambda x: x == 0, rnd_mod.Random(s))
                for s in range(25)
            ]
            assert all(r.succeeded for r in runs)
            means.append(statistics.mean(r.oracle_calls for r in runs))
        # quadrupling N roughly doubles the queries
        assert means[1] / means[0] == pytest.approx(2.0, rel=0.8)
        assert means[2] / means[1] == pytest.approx(2.0, rel=0.8)
