"""Batch-over-the-wire (``solve_many``) and serve-path bugfix tests.

The contract under test (ISSUE acceptance criteria): ``solve_many``
per-item bodies are bit-identical to the same problems sent as
individual ``solve`` calls; duplicate fingerprints in one manifest cost
exactly one kernel sweep (counter-verified through ``metrics``); a
non-numeric ``priority`` answers 400 instead of killing the connection;
``ServeClient`` matches responses to requests by ``id`` under pipelined
reordering; and coalesced followers inherit a failed leader's terminal
status instead of re-running the sweep (``kernel_sweeps == 1`` for four
coalesced requests against an always-aborting budget).
"""

import json
import socket
import threading
import time

import pytest

from repro import parse, solve
from repro.errors import BudgetExceeded, ServeError
from repro.serve import ServeClient, ServeConfig, running_server
from repro.truth_table import TruthTable


def _config(**overrides):
    """A fast test-sized server: thread backend, small pool."""
    defaults = dict(
        backend="thread", jobs=2, max_inflight=2, queue_limit=16
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _values_payload(table):
    return {
        "values": "".join(str(int(v)) for v in table.values),
        "n": table.n,
    }


def _strip_timing(body):
    """A response body minus its wall-clock field (the only part of a
    solve body that may legitimately differ between two identical
    runs)."""
    body = json.loads(json.dumps(body))  # deep copy
    if isinstance(body.get("result"), dict):
        body["result"].pop("elapsed_seconds", None)
    return body


class TestSolveMany:
    def test_batch_bit_identical_to_singles(self):
        """Every per-item body equals the same problem sent as an
        individual ``solve`` to a fresh server: orders, mincosts and
        operation counters, field for field."""
        tables = [TruthTable.random(4, seed=s) for s in (31, 32, 33)]
        other = TruthTable.random(4, seed=34)
        items = [
            {"method": "fs", **_values_payload(t)} for t in tables
        ] + [
            {"method": "window", "width": 3, **_values_payload(other)},
            {"method": "shared",
             "tables": [_values_payload(tables[0]), _values_payload(other)]},
            {"method": "constrained", "precedence": [[0, 3]],
             **_values_payload(other)},
        ]
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                batch = client.solve_many(items)
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                singles = [client.request({**item, "op": "solve"})
                           for item in items]
        assert batch["summary"]["items"] == len(items)
        assert batch["summary"]["error"] == 0
        for body, single in zip(batch["results"], singles):
            single.pop("id", None)
            assert _strip_timing(body) == _strip_timing(single)
        assert batch["statuses"] == ["ok"] * len(items)

    def test_duplicate_fingerprints_cost_one_kernel_sweep(self):
        """Six disguises of one function — identical, permuted,
        complemented — in one manifest: one sweep, five dedups,
        counter-verified."""
        table = TruthTable.random(5, seed=35)
        perm = [3, 1, 4, 0, 2]
        comp = TruthTable(5, [1 - v for v in table.values])
        items = [
            _values_payload(table),
            _values_payload(table),
            _values_payload(table.permute(perm)),
            _values_payload(comp),
            _values_payload(table),
            _values_payload(table.permute(perm)),
        ]
        direct = solve(table)
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                batch = client.solve_many(items, method="fs")
                metrics = client.metrics()
        assert metrics["server"]["kernel_sweeps"] == 1
        assert metrics["server"]["batches"] == 1
        assert metrics["server"]["batch_items"] == 6
        assert metrics["server"]["batch_deduped"] == 5
        assert batch["summary"]["unique"] == 1
        assert batch["summary"]["deduped"] == 5
        assert batch["statuses"][0] == "ok"
        assert batch["statuses"][1:] == ["cached"] * 5
        for body in batch["results"]:
            assert body["ok"] is True
            assert body["result"]["mincost"] == direct.mincost

    def test_mixed_statuses_cached_and_error(self):
        table = TruthTable.random(4, seed=36)
        fresh = TruthTable.random(4, seed=37)
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                client.solve(method="fs", **_values_payload(table))
                batch = client.solve_many([
                    _values_payload(table),          # already cached
                    _values_payload(fresh),          # cold
                    {"values": [0, 1, 0]},           # not a power of two
                    {"method": "fs_star"},           # unservable
                ], method="fs")
        assert batch["statuses"][0] == "cached"
        assert batch["statuses"][1] == "ok"
        assert batch["statuses"][2] == "error"
        assert batch["statuses"][3] == "error"
        assert batch["results"][0]["result"]["from_cache"] is True
        assert batch["results"][2]["status"] == 400
        assert batch["results"][3]["status"] == 400
        assert batch["summary"]["error"] == 2
        assert batch["summary"]["cached"] == 1

    def test_item_level_timeout_rejected(self):
        """The manifest shares ONE budget; a per-item timeout is a
        contract violation answered per item, not a crash."""
        table = TruthTable.random(3, seed=38)
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                batch = client.solve_many([
                    {**_values_payload(table), "timeout": 5},
                    _values_payload(table),
                ], method="fs")
        assert batch["statuses"][0] == "error"
        assert "batch-level" in (
            batch["results"][0]["error"]["message"]
        )
        assert batch["statuses"][1] == "ok"

    def test_empty_or_missing_items_is_400(self):
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                for payload in (
                    {"op": "solve_many"},
                    {"op": "solve_many", "items": []},
                    {"op": "solve_many", "items": "nope"},
                ):
                    response = client.request(payload)
                    assert response["ok"] is False
                    assert response["status"] == 400

    def test_oversized_manifest_is_400(self):
        table = TruthTable.random(3, seed=39)
        with running_server(_config(max_batch_items=4)) as server:
            with ServeClient(server.address) as client:
                response = client.request({
                    "op": "solve_many",
                    "items": [_values_payload(table)] * 5,
                })
                assert response["ok"] is False
                assert response["status"] == 400
                assert "caps manifests at 4" in (
                    response["error"]["message"]
                )

    def test_batch_larger_than_queue_still_completes(self):
        """Representatives beyond the queue bound apply backpressure
        (blocking puts) instead of tripping per-item 429s."""
        tables = [TruthTable.random(4, seed=60 + s) for s in range(8)]
        with running_server(
            _config(queue_limit=2, max_inflight=1)
        ) as server:
            with ServeClient(server.address) as client:
                batch = client.solve_many(
                    [_values_payload(t) for t in tables], method="fs"
                )
        assert batch["summary"]["error"] == 0
        assert len(batch["results"]) == 8


class TestPriorityValidation:
    def test_non_numeric_priority_is_400_not_dead_connection(self):
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                for bad in ("high", None, [1], {"p": 1}, True):
                    response = client.request({
                        "op": "solve", "expr": "x0 & x1", "priority": bad,
                    })
                    assert response["ok"] is False, bad
                    assert response["status"] == 400, bad
                    assert "priority" in response["error"]["message"]
                # The connection handler survived every rejection.
                assert client.ping()
                result = client.solve(expr="x0 & x1", priority=3)
                assert result["mincost"] == solve(parse("x0 & x1")).mincost

    def test_batch_priority_validated_too(self):
        with running_server(_config()) as server:
            with ServeClient(server.address) as client:
                response = client.request({
                    "op": "solve_many", "priority": "urgent",
                    "items": [{"expr": "x0"}],
                })
                assert response["ok"] is False
                assert response["status"] == 400
                assert client.ping()


class TestClientResponseMatching:
    def test_out_of_order_lines_are_buffered_by_id(self):
        """A stub server answers two pipelined requests in reverse
        order; each collect() gets ITS response, never someone else's."""
        listener = socket.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()

        def stub():
            conn, _ = listener.accept()
            with conn, conn.makefile("rwb") as file:
                first = json.loads(file.readline())
                second = json.loads(file.readline())
                # Answer in reverse submission order.
                for request in (second, first):
                    file.write(json.dumps(
                        {"id": request["id"], "ok": True, "status": 200,
                         "echo": request["tag"]}
                    ).encode() + b"\n")
                file.flush()

        thread = threading.Thread(target=stub)
        thread.start()
        try:
            with ServeClient((host, port)) as client:
                id_a = client.submit({"tag": "a"})
                id_b = client.submit({"tag": "b"})
                # Collect in submission order although the wire carries
                # b's line first.
                assert client.collect(id_a)["echo"] == "a"
                assert client.collect(id_b)["echo"] == "b"
        finally:
            thread.join(timeout=5)
            listener.close()

    def test_pipelined_requests_at_different_priorities(self):
        """Regression for the first-line-wins bug: with one worker, a
        later low-priority submission overtakes an earlier high-priority
        one, so the earlier caller's next line off the socket is the
        OTHER request's response."""
        blocker = TruthTable.random(8, seed=41)
        slow = TruthTable.random(7, seed=42)
        fast = TruthTable.random(3, seed=43)
        with running_server(
            _config(max_inflight=1, queue_limit=16)
        ) as server:
            with ServeClient(server.address) as client:
                # Occupy the single worker so the next two queue up.
                blocker_id = client.submit({
                    "op": "solve", **_values_payload(blocker),
                })
                time.sleep(0.2)
                slow_id = client.submit({
                    "op": "solve", "priority": 5, **_values_payload(slow),
                })
                fast_id = client.submit({
                    "op": "solve", "priority": 0, **_values_payload(fast),
                })
                # Collect in submission order; the server answered the
                # priority-0 request before the priority-5 one.
                slow_response = client.collect(slow_id)
                fast_response = client.collect(fast_id)
                blocker_response = client.collect(blocker_id)
        assert tuple(slow_response["result"]["order"]) == solve(slow).order
        assert tuple(fast_response["result"]["order"]) == solve(fast).order
        assert (
            tuple(blocker_response["result"]["order"]) == solve(blocker).order
        )
        # The buffered path actually ran: fast's line was read (and
        # parked) while waiting for slow's.
        assert slow_response["id"] == slow_id
        assert fast_response["id"] == fast_id


class TestCoalescedFailurePropagation:
    def test_followers_inherit_leader_abort_one_sweep(self, monkeypatch):
        """Four concurrent identical requests against an always-aborting
        budget: the leader sweeps (and aborts) ONCE; the three coalesced
        followers inherit its 504 instead of re-running the sweep."""
        import repro.serve as serve_module

        started = threading.Event()

        def aborting_solve(*args, **kwargs):
            started.set()
            time.sleep(1.0)  # hold the fingerprint in-flight
            raise BudgetExceeded("deadline exhausted", reason="deadline")

        monkeypatch.setattr(serve_module, "solve", aborting_solve)
        table = TruthTable.random(5, seed=44)
        payload = {"op": "solve", **_values_payload(table)}
        responses = [None] * 4
        with running_server(_config(max_inflight=4)) as server:

            def hit(index):
                with ServeClient(server.address) as client:
                    responses[index] = client.request(payload)

            threads = [threading.Thread(target=hit, args=(0,))]
            threads[0].start()
            assert started.wait(10)  # leader is mid-sweep
            threads += [
                threading.Thread(target=hit, args=(i,)) for i in (1, 2, 3)
            ]
            for thread in threads[1:]:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            metrics = server.metrics_snapshot()["server"]
        for response in responses:
            assert response is not None
            assert response["ok"] is False
            assert response["status"] == 504
            assert response["error"]["type"] == "BudgetExceeded"
        assert metrics["kernel_sweeps"] == 1
        assert metrics["coalesced"] == 3
        assert metrics["coalesced_failures"] == 3


class TestServerShardedCache:
    def test_cache_shards_config_reaches_disk_layout(self, tmp_path):
        table = TruthTable.random(5, seed=45)
        config = _config(cache_dir=str(tmp_path), cache_shards=4)
        with running_server(config) as server:
            with ServeClient(server.address) as client:
                cold = client.solve(method="fs", **_values_payload(table))
                metrics = client.metrics()
        assert cold["from_cache"] is False
        assert metrics["config"]["cache_shards"] == 4
        sharded = list(tmp_path.glob("*/cache_*.json"))
        assert len(sharded) == 1
        assert not list(tmp_path.glob("cache_*.json"))
        # A restarted server (fresh process state, same dir) serves it.
        with running_server(config) as server:
            with ServeClient(server.address) as client:
                warm = client.solve(method="fs", **_values_payload(table))
        assert warm["from_cache"] is True
        assert warm["order"] == cold["order"]
