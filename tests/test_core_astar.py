"""Unit tests for the A* exact ordering search."""

import pytest

from repro.core import ReductionRule, run_fs
from repro.core.astar import astar_optimal_ordering
from repro.functions import achilles_heel, multiplexer, parity
from repro.truth_table import TruthTable, count_subfunctions


class TestOptimality:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_fs_random(self, seed):
        n = 2 + seed % 4
        tt = TruthTable.random(n, seed=seed)
        a = astar_optimal_ordering(tt)
        assert a.mincost == run_fs(tt).mincost

    @pytest.mark.parametrize("seed", range(4))
    def test_order_achieves_mincost(self, seed):
        tt = TruthTable.random(5, seed=20 + seed)
        a = astar_optimal_ordering(tt)
        assert sum(count_subfunctions(tt, list(a.order))) == a.mincost

    def test_zdd_rule(self):
        tt = TruthTable.random(5, seed=30)
        assert (
            astar_optimal_ordering(tt, rule=ReductionRule.ZDD).mincost
            == run_fs(tt, rule=ReductionRule.ZDD).mincost
        )

    def test_mtbdd_rule(self):
        tt = TruthTable.random(4, seed=31, num_values=3)
        assert (
            astar_optimal_ordering(tt, rule=ReductionRule.MTBDD).mincost
            == run_fs(tt, rule=ReductionRule.MTBDD).mincost
        )

    def test_constant_function(self):
        a = astar_optimal_ordering(TruthTable.constant(3, 1))
        assert a.mincost == 0

    def test_single_variable(self):
        a = astar_optimal_ordering(TruthTable.projection(1, 0))
        assert a.mincost == 1 and a.order == (0,)


class TestSearchBehaviour:
    def test_expands_fewer_states_on_structured_input(self):
        tt = achilles_heel(4)
        a = astar_optimal_ordering(tt)
        assert a.states_expanded < (1 << 8)  # strictly beats FS

    def test_multiplexer_pruning(self):
        tt = multiplexer(2)
        a = astar_optimal_ordering(tt)
        assert a.mincost == 7
        assert a.states_expanded < (1 << tt.n)

    def test_never_expands_more_than_fs(self):
        for seed in range(4):
            tt = TruthTable.random(5, seed=40 + seed)
            a = astar_optimal_ordering(tt)
            assert a.states_expanded <= (1 << 5)

    def test_generated_counts_compactions(self):
        tt = TruthTable.random(4, seed=50)
        a = astar_optimal_ordering(tt)
        assert a.states_generated == a.counters.compactions

    def test_symmetric_function_no_pruning_advantage(self):
        # Parity's DP landscape is flat: every subset is on an optimal
        # path, so A* must expand everything (documented degradation).
        tt = parity(5)
        a = astar_optimal_ordering(tt)
        assert a.states_expanded == (1 << 5)

    def test_pi_order_consistency(self):
        tt = TruthTable.random(4, seed=51)
        a = astar_optimal_ordering(tt)
        assert tuple(reversed(a.pi)) == a.order
        assert sorted(a.order) == list(range(4))
