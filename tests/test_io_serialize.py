"""Round-trip and rejection tests for :mod:`repro.io.serialize`.

The generic round-trip lives in ``test_io.py``; this file pins the two
rules with non-trivial encodings — CBDD (children are complement-tagged
edges, one terminal) and MTBDD (arbitrary terminal multiplicities) — and
the named malformed-payload paths: missing child, terminal collision,
bad format tag.
"""

import json

import pytest

from repro.core import ReductionRule, build_diagram, reconstruct_minimum_diagram, run_fs
from repro.errors import ParseError
from repro.io import diagram_from_json, diagram_to_json, load_diagram, save_diagram
from repro.truth_table import TruthTable


def cbdd_diagram(seed=40, n=4):
    tt = TruthTable.random(n, seed=seed)
    result = run_fs(tt, rule=ReductionRule.CBDD)
    return tt, reconstruct_minimum_diagram(tt, result)


def mtbdd_diagram(seed=41, n=4, num_values=4):
    tt = TruthTable.random(n, seed=seed, num_values=num_values)
    result = run_fs(tt, rule=ReductionRule.MTBDD)
    return tt, reconstruct_minimum_diagram(tt, result)


class TestCbddRoundTrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_function_preserved(self, seed):
        tt, diagram = cbdd_diagram(seed=seed)
        restored = diagram_from_json(diagram_to_json(diagram))
        assert restored.rule is ReductionRule.CBDD
        assert restored.to_truth_table() == tt
        assert restored.mincost == diagram.mincost
        assert restored.num_terminals == 1

    def test_edge_encoding_survives(self):
        # A complemented function exercises root-level complement bits.
        tt = TruthTable.from_callable(3, lambda a, b, c: 1 - (a & b & c))
        diagram = reconstruct_minimum_diagram(
            tt, run_fs(tt, rule=ReductionRule.CBDD))
        restored = diagram_from_json(diagram_to_json(diagram))
        assert restored.root == diagram.root
        assert restored.nodes == diagram.nodes
        assert restored.to_truth_table() == tt

    def test_file_roundtrip(self, tmp_path):
        tt, diagram = cbdd_diagram(seed=5)
        path = tmp_path / "cbdd.json"
        save_diagram(diagram, path)
        assert load_diagram(path).to_truth_table() == tt


class TestMtbddRoundTrip:
    @pytest.mark.parametrize("num_values", [3, 5])
    def test_function_preserved(self, num_values):
        tt, diagram = mtbdd_diagram(num_values=num_values)
        restored = diagram_from_json(diagram_to_json(diagram))
        assert restored.rule is ReductionRule.MTBDD
        assert restored.to_truth_table() == tt
        assert restored.terminal_values == diagram.terminal_values

    def test_terminal_values_order_preserved(self):
        tt, diagram = mtbdd_diagram(seed=42, num_values=4)
        payload = json.loads(diagram_to_json(diagram))
        assert payload["terminal_values"] == sorted(payload["terminal_values"])
        assert payload["num_terminals"] == len(payload["terminal_values"])

    def test_file_roundtrip(self, tmp_path):
        tt, diagram = mtbdd_diagram(seed=43)
        path = tmp_path / "mtbdd.json"
        save_diagram(diagram, path)
        assert load_diagram(path).to_truth_table() == tt


class TestMalformedPayloads:
    @pytest.mark.parametrize("rule", [ReductionRule.CBDD, ReductionRule.MTBDD])
    def test_missing_child(self, rule):
        if rule is ReductionRule.MTBDD:
            tt, diagram = mtbdd_diagram()
        else:
            tt, diagram = cbdd_diagram()
        payload = json.loads(diagram_to_json(diagram))
        victim = max(int(k) for k in payload["nodes"])
        var, lo, hi = payload["nodes"][str(victim)]
        # Point at a node id that exists in no encoding: far beyond both
        # the plain-id and the (node << 1 | c) edge ranges.
        payload["nodes"][str(victim)] = [var, lo, 10 ** 6]
        with pytest.raises(ParseError, match="missing child"):
            diagram_from_json(json.dumps(payload))

    def test_terminal_collision(self):
        tt, diagram = mtbdd_diagram()
        payload = json.loads(diagram_to_json(diagram))
        # Claim a decision node whose id collides with a terminal id.
        payload["nodes"]["0"] = [0, 0, 1]
        with pytest.raises(ParseError, match="collides with terminals"):
            diagram_from_json(json.dumps(payload))

    def test_bad_format_tag(self):
        tt, diagram = cbdd_diagram()
        payload = json.loads(diagram_to_json(diagram))
        payload["format"] = "repro-diagram-v999"
        with pytest.raises(ParseError, match="unknown diagram format"):
            diagram_from_json(json.dumps(payload))

    def test_missing_format_tag(self):
        tt, diagram = cbdd_diagram()
        payload = json.loads(diagram_to_json(diagram))
        del payload["format"]
        with pytest.raises(ParseError, match="unknown diagram format"):
            diagram_from_json(json.dumps(payload))

    def test_unknown_root(self):
        tt, diagram = mtbdd_diagram()
        payload = json.loads(diagram_to_json(diagram))
        payload["root"] = 10 ** 6
        with pytest.raises(ParseError, match="root"):
            diagram_from_json(json.dumps(payload))
