"""Resource-governance tests: budgets, cancellation, degradation.

The contract under test (ISSUE acceptance criteria): every DP entry
point on the shared execution engine aborts *at a layer boundary* —
never mid-kernel — when its :class:`~repro.core.budget.Budget` trips,
deterministically for any ``jobs`` value; the raised
:class:`~repro.errors.BudgetExceeded` records progress (layers
completed, best-so-far bound, last committed checkpoint); an aborted
checkpointed run resumed with a bigger (or no) budget reproduces the
unbudgeted result bit-identically in results and counters; and the
degradation ladder always yields an ordering, honestly tagged with the
rung that produced it.
"""

import threading

import pytest

from repro.analysis.counters import OperationCounters
from repro.core import (
    Budget,
    DEFAULT_LADDER,
    EngineConfig,
    FallbackResult,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    handle_signals,
    initial_state,
    optimize_with_fallback,
    parse_ladder,
    run_fs,
    run_fs_constrained,
    run_fs_shared,
    run_fs_star,
    window_sweep,
)
from repro.core.spec import ReductionRule
from repro.errors import BudgetExceeded, OrderingError
from repro.truth_table import TruthTable, obdd_size


def fake_clock(step=0.5):
    """A monotonic clock advancing ``step`` seconds per reading."""
    ticks = [0.0]

    def clock():
        ticks[0] += step
        return ticks[0]

    return clock


def assert_same_result(resumed, clean):
    assert resumed.order == clean.order
    assert resumed.pi == clean.pi
    assert resumed.mincost == clean.mincost
    assert resumed.counters == clean.counters


# ----------------------------------------------------------------------
# the Budget object itself
# ----------------------------------------------------------------------

class TestBudgetUnit:
    def test_default_budget_never_trips(self):
        budget = Budget()
        budget.arm()
        budget.check(frontier_entries=10**9, frontier_bytes=10**12)
        assert budget.remaining() is None
        assert not budget.cancelled()

    def test_deadline_with_fake_clock(self):
        budget = Budget(deadline=1.0, clock=fake_clock(0.4))
        assert budget.elapsed() == 0.0  # not armed yet
        budget.arm()
        assert budget.exceeded_reason() is None  # elapsed 0.4
        assert budget.exceeded_reason() is None  # elapsed 0.8
        verdict = budget.exceeded_reason()       # elapsed 1.2
        assert verdict is not None and verdict[0] == "deadline"

    def test_arm_is_idempotent(self):
        clock = fake_clock(1.0)
        budget = Budget(deadline=10.0, clock=clock)
        budget.arm()
        first = budget.elapsed()
        budget.arm()  # must not restart the clock
        assert budget.elapsed() > first

    def test_priority_cancelled_over_deadline_over_caps(self):
        budget = Budget(deadline=0.0, max_frontier_entries=1,
                        max_frontier_bytes=1, clock=fake_clock())
        budget.arm()
        assert budget.exceeded_reason(99, 99)[0] == "deadline"
        budget.cancel.set()
        assert budget.exceeded_reason(99, 99)[0] == "cancelled"

    def test_frontier_caps_order(self):
        budget = Budget(max_frontier_entries=5, max_frontier_bytes=100)
        budget.arm()
        assert budget.exceeded_reason(6, 50)[0] == "frontier_entries"
        assert budget.exceeded_reason(5, 101)[0] == "frontier_bytes"
        assert budget.exceeded_reason(5, 100) is None

    def test_check_raises_with_progress_and_tallies_once(self):
        counters = OperationCounters()
        budget = Budget()
        budget.cancel.set()
        with pytest.raises(BudgetExceeded) as info:
            budget.check(counters=counters, layers_completed=3,
                         best_bound=17, best_order=(2, 0, 1),
                         checkpoint_path="/tmp/x.json", where="test site")
        exc = info.value
        assert exc.reason == "cancelled"
        assert exc.layers_completed == 3
        assert exc.best_bound == 17
        assert exc.best_order == (2, 0, 1)
        assert exc.checkpoint_path == "/tmp/x.json"
        assert exc.where == "test site"
        assert counters.extra["budget_aborts"] == 1

    def test_subbudget_shares_cancel_and_caps(self):
        parent = Budget(deadline=100.0, max_frontier_entries=7)
        child = parent.subbudget(1.0)
        assert child.deadline == 1.0
        assert child.max_frontier_entries == 7
        parent.cancel.set()
        assert child.cancelled()

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(deadline=-1.0)
        with pytest.raises(ValueError):
            Budget(max_frontier_entries=0)
        with pytest.raises(ValueError):
            Budget(max_frontier_bytes=0)


class TestRetryPolicy:
    def test_retries_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(max_retries=3, base_delay=0.1,
                             sleep=sleeps.append)
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] <= 2:
                raise OSError("blip")
            return "done"

        assert policy.run(flaky) == "done"
        assert calls[0] == 3
        assert policy.retries_used == 2
        assert sleeps == [0.1, 0.2]  # exponential backoff

    def test_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(max_retries=1, sleep=lambda s: None)
        with pytest.raises(OSError):
            policy.run(lambda: (_ for _ in ()).throw(OSError("always")))
        assert policy.retries_used == 1

    def test_non_retryable_propagates_immediately(self):
        policy = RetryPolicy(max_retries=5, sleep=lambda s: None)
        calls = [0]

        def bad():
            calls[0] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.run(bad)
        assert calls[0] == 1


# ----------------------------------------------------------------------
# engine-level aborts: deterministic, at layer boundaries, resumable
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 4])
class TestEngineAborts:
    def test_deadline_abort_at_layer_boundary(self, jobs):
        table = TruthTable.random(6, seed=1)
        counters = OperationCounters()
        budget = Budget(deadline=1.0, clock=fake_clock(0.2))
        with pytest.raises(BudgetExceeded) as info:
            run_fs(table, counters=counters, jobs=jobs, budget=budget)
        exc = info.value
        assert exc.reason == "deadline"
        assert "layer boundary" in exc.where
        assert exc.layers_completed is not None
        assert exc.best_bound is not None
        assert counters.extra["budget_aborts"] == 1

    def test_abort_layer_independent_of_jobs(self, jobs):
        # Checks run only from the coordinator thread, so with identical
        # (fake) clocks the abort point is the same for every jobs value.
        table = TruthTable.random(6, seed=2)

        def aborted_layer(j):
            with pytest.raises(BudgetExceeded) as info:
                run_fs(table, jobs=j, budget=Budget(
                    deadline=1.0, clock=fake_clock(0.25)))
            return info.value.layers_completed, info.value.where

        assert aborted_layer(jobs) == aborted_layer(1)

    def test_frontier_entries_cap(self, jobs):
        table = TruthTable.random(7, seed=3)
        with pytest.raises(BudgetExceeded) as info:
            run_fs(table, jobs=jobs, budget=Budget(max_frontier_entries=10))
        exc = info.value
        # C(7, k) first exceeds 10 at k=2 (21 subsets).
        assert exc.reason == "frontier_entries"
        assert exc.layers_completed == 2
        assert "after k=2" in exc.where

    def test_frontier_bytes_cap(self, jobs):
        table = TruthTable.random(7, seed=3)
        with pytest.raises(BudgetExceeded) as info:
            run_fs(table, jobs=jobs, budget=Budget(max_frontier_bytes=2048))
        assert info.value.reason == "frontier_bytes"

    def test_cancellation_abort(self, jobs):
        table = TruthTable.random(6, seed=4)
        budget = Budget()
        budget.cancel.set()
        with pytest.raises(BudgetExceeded) as info:
            run_fs(table, jobs=jobs, budget=budget)
        assert info.value.reason == "cancelled"
        assert info.value.layers_completed == 0

    def test_abort_names_checkpoint_and_resume_is_bit_identical(
            self, jobs, tmp_path):
        table = TruthTable.random(6, seed=5)
        clean = run_fs(table, counters=OperationCounters(), jobs=jobs)
        ckpt = str(tmp_path / "gov")
        with pytest.raises(BudgetExceeded) as info:
            run_fs(table, counters=OperationCounters(), jobs=jobs,
                   checkpoint_dir=ckpt,
                   budget=Budget(deadline=1.0, clock=fake_clock(0.3)))
        exc = info.value
        assert exc.layers_completed >= 1
        assert exc.checkpoint_path is not None  # the committed layer
        resumed = run_fs(table, counters=OperationCounters(), jobs=jobs,
                         checkpoint_dir=ckpt, resume=True)
        assert_same_result(resumed, clean)

    def test_resume_with_bigger_budget_is_bit_identical(self, jobs, tmp_path):
        table = TruthTable.random(6, seed=6)
        clean = run_fs(table, counters=OperationCounters(), jobs=jobs)
        ckpt = str(tmp_path / "gov2")
        with pytest.raises(BudgetExceeded):
            run_fs(table, counters=OperationCounters(), jobs=jobs,
                   checkpoint_dir=ckpt,
                   budget=Budget(deadline=1.0, clock=fake_clock(0.3)))
        resumed = run_fs(table, counters=OperationCounters(), jobs=jobs,
                         checkpoint_dir=ckpt, resume=True,
                         budget=Budget(deadline=3600.0))
        assert_same_result(resumed, clean)


@pytest.mark.parametrize("jobs", [1, 4])
class TestFaultAndBudgetMatrix:
    """FaultInjector kills + budget governance composed: every kill
    point resumes bit-identically even when the resumed run itself is
    governed by a (generous) deadline."""

    def test_kill_at_every_layer_then_resume_under_deadline(
            self, jobs, tmp_path):
        table = TruthTable.random(5, seed=7)
        clean = run_fs(table, counters=OperationCounters(), jobs=jobs)
        for k in range(1, 5):
            ckpt = str(tmp_path / f"k{k}")
            with pytest.raises(InjectedFault):
                run_fs(table, counters=OperationCounters(), jobs=jobs,
                       checkpoint_dir=ckpt,
                       budget=Budget(deadline=3600.0),
                       fault_injector=FaultInjector(kill_after_layer=k))
            resumed = run_fs(table, counters=OperationCounters(), jobs=jobs,
                             checkpoint_dir=ckpt, resume=True,
                             budget=Budget(deadline=3600.0))
            assert_same_result(resumed, clean)

    def test_resume_already_over_budget_aborts_before_any_layer(
            self, jobs, tmp_path):
        table = TruthTable.random(5, seed=8)
        ckpt = str(tmp_path / "over")
        with pytest.raises(InjectedFault):
            run_fs(table, counters=OperationCounters(), jobs=jobs,
                   checkpoint_dir=ckpt,
                   fault_injector=FaultInjector(kill_after_layer=2))
        exhausted = Budget(deadline=0.0, clock=fake_clock())
        with pytest.raises(BudgetExceeded) as info:
            run_fs(table, counters=OperationCounters(), jobs=jobs,
                   checkpoint_dir=ckpt, resume=True, budget=exhausted)
        exc = info.value
        # The pre-layer check fires before k=3 touches any kernel, and
        # still names the restored checkpoint for the next resume.
        assert exc.layers_completed == 2
        assert "before k=3" in exc.where
        assert exc.checkpoint_path is not None


# ----------------------------------------------------------------------
# every other engine-backed entry point honors the budget
# ----------------------------------------------------------------------

class TestEntryPointCoverage:
    def test_run_fs_shared(self):
        tables = [TruthTable.random(5, seed=s) for s in (1, 2)]
        with pytest.raises(BudgetExceeded) as info:
            run_fs_shared(tables, budget=Budget(
                deadline=1.0, clock=fake_clock(0.4)))
        assert info.value.reason == "deadline"
        assert "layer boundary" in info.value.where

    def test_run_fs_constrained(self):
        table = TruthTable.random(5, seed=3)
        with pytest.raises(BudgetExceeded) as info:
            run_fs_constrained(table, [(0, 1)], budget=Budget(
                deadline=1.0, clock=fake_clock(0.4)))
        assert info.value.reason == "deadline"

    def test_run_fs_star_entry_check(self):
        table = TruthTable.random(5, seed=4)
        base = initial_state(table, ReductionRule.BDD)
        budget = Budget()
        budget.cancel.set()
        with pytest.raises(BudgetExceeded) as info:
            run_fs_star(base, (1 << 5) - 1, config=EngineConfig(budget=budget))
        assert info.value.reason == "cancelled"

    def test_window_sweep_carries_sweep_progress(self):
        table = TruthTable.random(6, seed=5)
        budget = Budget(deadline=2.0, clock=fake_clock(0.3))
        counters = OperationCounters()
        with pytest.raises(BudgetExceeded) as info:
            window_sweep(table, width=3, counters=counters,
                         config=EngineConfig(budget=budget))
        exc = info.value
        # Whatever tripped (the window boundary or an inner FS* layer),
        # the surfaced progress is the sweep's: a full valid ordering
        # and the total size it achieves.
        assert sorted(exc.best_order) == list(range(6))
        assert exc.best_bound >= 1

    def test_budget_check_runs_under_profiler_phase(self):
        from repro.observability import Profiler

        table = TruthTable.random(5, seed=6)
        profiler = Profiler()
        with pytest.raises(BudgetExceeded):
            run_fs(table, profiler=profiler,
                   budget=Budget(deadline=1.0, clock=fake_clock(0.3)))
        assert "budget_check" in profiler.phases


# ----------------------------------------------------------------------
# the degradation ladder
# ----------------------------------------------------------------------

class TestFallbackLadder:
    def test_no_pressure_exact_rung_matches_run_fs(self):
        table = TruthTable.random(6, seed=10)
        clean = run_fs(table)
        fb = optimize_with_fallback(table)
        assert isinstance(fb, FallbackResult)
        assert fb.exact and fb.rung == "fs"
        assert fb.order == clean.order
        assert fb.mincost == clean.mincost
        assert [a.rung for a in fb.attempts] == ["fs"]
        assert "fallback_used" not in fb.counters.extra

    def test_deadline_degrades_to_sift_and_tags_result(self):
        table = TruthTable.random(7, seed=11)
        budget = Budget(deadline=1.0, clock=fake_clock(0.6))
        fb = optimize_with_fallback(table, budget=budget)
        assert not fb.exact
        assert fb.rung == "sift"
        assert [a.rung for a in fb.attempts] == ["fs", "window", "sift"]
        assert [a.status for a in fb.attempts] == [
            "budget_exceeded", "budget_exceeded", "ok"]
        assert fb.counters.extra["fallback_used"] == 1
        assert fb.counters.extra["budget_aborts"] >= 2
        # The reported size is the honest cost of the returned ordering.
        assert sorted(fb.order) == list(range(7))
        assert fb.size == obdd_size(table, fb.order)

    def test_last_rung_ignores_deadline_so_ladder_is_total(self):
        table = TruthTable.random(6, seed=12)
        budget = Budget(deadline=0.5, clock=fake_clock(0.6))  # instantly over
        fb = optimize_with_fallback(table, budget=budget,
                                    ladder=("fs", "window"))
        assert fb.rung == "window"
        assert not fb.exact
        assert fb.size == obdd_size(table, fb.order)

    def test_window_rung_bound_is_at_least_optimal(self):
        table = TruthTable.random(6, seed=13)
        clean = run_fs(table)
        budget = Budget(deadline=0.5, clock=fake_clock(0.6))
        fb = optimize_with_fallback(table, budget=budget)
        assert fb.mincost >= clean.mincost  # an upper bound, never below

    def test_cancellation_propagates_out_of_the_ladder(self):
        table = TruthTable.random(6, seed=14)
        budget = Budget()
        budget.cancel.set()
        with pytest.raises(BudgetExceeded) as info:
            optimize_with_fallback(table, budget=budget)
        assert info.value.reason == "cancelled"

    def test_single_exact_rung_over_budget_raises(self):
        table = TruthTable.random(7, seed=15)
        budget = Budget(max_frontier_entries=5)
        with pytest.raises(BudgetExceeded) as info:
            optimize_with_fallback(table, budget=budget, ladder=("fs",))
        assert info.value.reason == "frontier_entries"

    def test_parse_ladder(self):
        assert parse_ladder(None) == DEFAULT_LADDER
        assert parse_ladder("window , sift") == ("window", "sift")
        assert parse_ladder(["fs"]) == ("fs",)
        with pytest.raises(OrderingError):
            parse_ladder("fs,teleport")
        with pytest.raises(OrderingError):
            parse_ladder("")

    def test_unknown_rung_rejected_up_front(self):
        with pytest.raises(ValueError):
            optimize_with_fallback(TruthTable.random(4, seed=1),
                                   ladder=("fs", "nope"))


class TestSignalHandling:
    def test_sigint_sets_cancel_and_aborts_at_boundary(self):
        import os
        import signal

        table = TruthTable.random(6, seed=20)
        budget = Budget()
        before = signal.getsignal(signal.SIGINT)
        with handle_signals(budget) as installed:
            assert installed
            assert signal.getsignal(signal.SIGINT) is not before
            os.kill(os.getpid(), signal.SIGINT)
            with pytest.raises(BudgetExceeded) as info:
                run_fs(table, budget=budget)
            assert info.value.reason == "cancelled"
        # Handlers restored afterwards.
        assert signal.getsignal(signal.SIGINT) is before

    def test_noop_off_main_thread(self):
        import signal
        import warnings

        budget = Budget()
        seen = []
        caught = []
        before = (
            signal.getsignal(signal.SIGINT),
            signal.getsignal(signal.SIGTERM),
        )

        def worker():
            with warnings.catch_warnings(record=True) as log:
                warnings.simplefilter("always")
                with handle_signals(budget) as installed:
                    seen.append(installed)
                caught.extend(log)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen == [False]
        # The no-op is loud: a RuntimeWarning names the asyncio-correct
        # alternative, and the process handlers were never touched.
        assert any(
            issubclass(w.category, RuntimeWarning)
            and "no-op off the main thread" in str(w.message)
            for w in caught
        )
        assert (
            signal.getsignal(signal.SIGINT),
            signal.getsignal(signal.SIGTERM),
        ) == before


class TestStaleRearm:
    """A Budget's clock arms once; re-arming an exhausted one is loud."""

    def test_rearm_exhausted_budget_warns(self):
        import warnings

        clock = iter([0.0, 10.0, 10.0, 10.0, 10.0]).__next__
        budget = Budget(deadline=1.0, clock=clock)
        budget.arm()
        # 10s elapsed on a 1s deadline: the next arm() is the stale-clock
        # footgun (every run under this budget aborts immediately).
        with pytest.warns(RuntimeWarning, match="re-arming an exhausted"):
            budget.arm()
        # The clock kept its original start: still exhausted.
        assert budget.remaining() == 0.0

    def test_rearm_live_budget_is_silent(self):
        import warnings

        budget = Budget(deadline=60.0)
        budget.arm()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            budget.arm()  # plenty of deadline left: not the footgun

    def test_ensure_armed_is_always_silent(self):
        import warnings

        clock = iter([0.0, 10.0, 10.0, 10.0]).__next__
        budget = Budget(deadline=1.0, clock=clock)
        budget.arm()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # The internal engine idiom: exhausted or not, ensure_armed
            # never warns — exhaustion surfaces as BudgetExceeded at the
            # next layer boundary instead.
            assert budget.ensure_armed() is budget

    def test_subbudget_gets_a_fresh_clock(self):
        budget = Budget(deadline=0.5)
        budget.arm()
        child = budget.subbudget(60.0)
        child.arm()
        assert child.remaining() > 1.0
        assert child.cancel is budget.cancel


# ----------------------------------------------------------------------
# ISSUE acceptance: n=14, 100ms wall-clock, prompt abort, exact resume
# ----------------------------------------------------------------------

class TestAcceptanceN14:
    def test_prompt_abort_and_bit_identical_resume(self, tmp_path):
        table = TruthTable.random(14, seed=42)
        ckpt = str(tmp_path / "n14")
        with pytest.raises(BudgetExceeded) as info:
            run_fs(table, counters=OperationCounters(),
                   checkpoint_dir=ckpt, budget=Budget(deadline=0.1))
        exc = info.value
        assert exc.reason == "deadline"
        # Prompt: the overshoot is bounded by one (early, cheap) layer.
        assert exc.elapsed_seconds < 2.0
        assert exc.layers_completed is not None and exc.layers_completed >= 0
        clean = run_fs(table, counters=OperationCounters())
        resumed = run_fs(table, counters=OperationCounters(),
                         checkpoint_dir=ckpt, resume=True)
        assert_same_result(resumed, clean)
