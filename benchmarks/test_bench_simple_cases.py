"""Section 3.1 / Appendix B: the simple-case exponent chain.

Paper claims: gamma_0 = 2.98581 (single split, no preprocessing),
gamma_1 = 2.97625 (with FS* preprocessing), gamma_2 = 2.8569 (two
division points, Appendix B) — each strictly improving, all below the
classical 3.  Also evaluates the Theorem 10 time model (recurrence
(5)-(7)) with exact binomials to show the same ordering holds at finite n,
not just asymptotically.
"""

import math

import pytest

from conftest import print_table

from repro.analysis.complexity import theorem10_time_model, theorem5_bound
from repro.analysis.parameters import (
    gamma0,
    gamma1,
    gamma2_appendix_b,
    solve_parameters,
)


def test_simple_case_chain(benchmark):
    def solve_all():
        g0, a0 = gamma0()
        g1, a1 = gamma1()
        g2, b1, b2 = gamma2_appendix_b()
        g6 = solve_parameters(6, 3.0).base
        return g0, a0, g1, a1, g2, (b1, b2), g6

    g0, a0, g1, a1, g2, (b1, b2), g6 = benchmark(solve_all)
    print_table(
        "Section 3.1 simple cases (measured vs paper)",
        ["case", "base (ours)", "base (paper)", "alphas"],
        [
            ("classical FS", "3.00000", "3", "-"),
            ("gamma_0 (no preprocess)", f"{g0:.5f}", "2.98581", f"{a0:.6f}"),
            ("gamma_1 (preprocess)", f"{g1:.5f}", "2.97625", f"{a1:.6f}"),
            ("gamma_2 (App. B)", f"{g2:.5f}", "2.8569", f"{b1:.6f} {b2:.6f}"),
            ("gamma_6 (Table 1)", f"{g6:.5f}", "2.83728", "-"),
        ],
    )
    assert g0 == pytest.approx(2.98581, abs=5e-6)
    assert g1 == pytest.approx(2.97625, abs=5e-6)
    assert g2 == pytest.approx(2.8569, abs=5e-5)
    assert 3.0 > g0 > g1 > g2 > g6


def test_theorem10_model_beats_classical_at_finite_n(benchmark):
    alphas = (0.183791, 0.183802, 0.183974, 0.186131, 0.206480, 0.343573)

    def sweep():
        rows = []
        for n in (20, 40, 60, 80, 120, 200):
            model = theorem10_time_model(n, alphas)
            rows.append((n, model["total"], theorem5_bound(n)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Theorem 10 time model vs classical 3^n (exact binomials)",
        ["n", "quantum model", "classical 3^n", "ratio"],
        [
            (n, f"{q:.3e}", f"{c:.3e}", f"{q / c:.3e}")
            for n, q, c in rows
        ],
    )
    ratios = [q / c for _, q, c in rows]
    # Shape: polynomial constants lose at small n (level rounding makes
    # the small-n ratios non-monotone), the exponential advantage takes
    # over by n ~ 60, and the gap then widens without bound.
    assert ratios[2] < 1.0  # crossover at or before n = 60
    assert ratios[2:] == sorted(ratios[2:], reverse=True)
    assert ratios[-1] < 1e-3


def test_preprocess_balance_point(benchmark):
    # At the optimal alpha_1 the preprocessing and search terms of the
    # gamma_1 analysis balance (that is how the equation was derived);
    # verify numerically via the exponents.
    from repro.analysis.entropy import binary_entropy as H

    def exponents():
        _, alpha = gamma1()
        lhs = (1 - alpha) + H(alpha)
        rhs = 0.5 * H(alpha) + (1 - alpha) * math.log2(3)
        return lhs, rhs

    lhs, rhs = benchmark(exponents)
    print(f"\npreprocess exponent {lhs:.8f} == search exponent {rhs:.8f}")
    assert lhs == pytest.approx(rhs, abs=1e-10)
