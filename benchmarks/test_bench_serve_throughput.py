"""Daemon throughput: requests/sec through one warm pool + shared cache.

The ``repro serve`` daemon exists to amortize two costs across requests:
pool spin-up (paid once at startup instead of per invocation) and kernel
work (paid once per canonical function instead of per request).  This
benchmark measures both effects at n <= 10: a *cold* pass (every request
a distinct function — pure kernel throughput through the daemon) against
a *warm* pass (the same requests again — pure cache throughput), and
verifies every served answer bit-identically against direct
``repro.solve()`` calls.  Recorded to ``BENCH_serve_throughput.json``
next to this file (the CI uploads it as an artifact alongside the other
``BENCH_*.json`` files).
"""

import json
import pathlib
import time

from conftest import print_table

from repro import solve
from repro.serve import ServeClient, ServeConfig, running_server
from repro.truth_table import TruthTable


def _values_payload(table):
    return {
        "values": "".join(str(int(v)) for v in table.values),
        "n": table.n,
    }


def _run_pass(address, tables):
    with ServeClient(address, timeout=600) as client:
        start = time.perf_counter()
        results = [
            client.solve(method="fs", **_values_payload(table))
            for table in tables
        ]
        elapsed = time.perf_counter() - start
    return results, elapsed


def test_serve_throughput_artifact():
    sizes = (6, 8, 10)
    per_size = 4
    corpus = [
        TruthTable.random(n, seed=1000 * n + i)
        for n in sizes
        for i in range(per_size)
    ]
    reference = [solve(table) for table in corpus]

    config = ServeConfig(
        backend="thread", jobs=2, max_inflight=2, queue_limit=64
    )
    with running_server(config) as server:
        address = server.address
        cold_results, cold_seconds = _run_pass(address, corpus)
        warm_results, warm_seconds = _run_pass(address, corpus)
        with ServeClient(address) as client:
            metrics = client.metrics()

    # Every daemon answer is bit-identical to the direct library call.
    for expected, cold, warm in zip(reference, cold_results, warm_results):
        assert tuple(cold["order"]) == expected.order
        assert cold["mincost"] == expected.mincost
        assert warm["order"] == cold["order"]
        assert warm["mincost"] == cold["mincost"]

    # The cold pass sweeps once per distinct function; the warm pass
    # sweeps not at all.
    assert metrics["server"]["kernel_sweeps"] == len(corpus)
    assert metrics["server"]["cache_hit_solves"] == len(corpus)
    assert all(r["from_cache"] for r in warm_results)
    assert not any(r["from_cache"] for r in cold_results)

    cold_rps = len(corpus) / cold_seconds
    warm_rps = len(corpus) / warm_seconds
    speedup = warm_rps / cold_rps

    print_table(
        "serve throughput (one warm pool, shared cache)",
        ["pass", "requests", "seconds", "req/sec"],
        [
            ("cold (all kernel)", len(corpus), f"{cold_seconds:.3f}",
             f"{cold_rps:.1f}"),
            ("warm (all cache)", len(corpus), f"{warm_seconds:.3f}",
             f"{warm_rps:.1f}"),
        ],
    )
    print(f"warm/cold speedup: {speedup:.1f}x "
          f"(cache hit rate {metrics['cache']['hit_rate']:.2f})")

    # Shape assertion: serving from the shared cache must beat running
    # the kernel (the entire point of a long-lived daemon).
    assert warm_seconds < cold_seconds

    record = {
        "benchmark": "serve_throughput",
        "sizes": list(sizes),
        "requests_per_pass": len(corpus),
        "cold": {
            "seconds": round(cold_seconds, 6),
            "requests_per_second": round(cold_rps, 3),
        },
        "warm": {
            "seconds": round(warm_seconds, 6),
            "requests_per_second": round(warm_rps, 3),
        },
        "warm_over_cold_speedup": round(speedup, 3),
        "server": metrics["server"],
        "cache": metrics["cache"],
        "config": {
            "backend": config.backend,
            "jobs": config.jobs,
            "max_inflight": config.max_inflight,
        },
    }
    out_path = pathlib.Path(__file__).parent / "BENCH_serve_throughput.json"
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
