"""Result-cache hit rate: canonicalization vs re-solving.

A corpus of random functions is expanded with permuted and complemented
variants (the orbits the canonical fingerprint is supposed to collapse)
and solved twice through one :class:`~repro.core.ResultCache`.  Measured:
the cold/warm hit rates, the kernel work (``table_cells``) a warm pass
avoids entirely, and the wall-clock ratio — recorded to
``BENCH_cache_hit_rate.json`` next to this file (the CI uploads it as an
artifact alongside ``BENCH_checkpoint_roundtrip.json``).
"""

import json
import pathlib
import time

from conftest import print_table

from repro.analysis.counters import OperationCounters
from repro.core import ReductionRule, ResultCache, run_fs
from repro.truth_table import TruthTable


def _variant_corpus(n, base_count, seed0=100):
    """base functions + a permuted and a complemented copy of each."""
    corpus = []
    for i in range(base_count):
        base = TruthTable.random(n, seed=seed0 + i)
        permuted = base.permute(list(range(1, n)) + [0])
        complemented = TruthTable(n, 1 - base.values)
        corpus += [(f"f{i}", base), (f"f{i}/perm", permuted),
                   (f"f{i}/compl", complemented)]
    return corpus


def _solve_all(corpus, cache):
    counters = OperationCounters()
    start = time.perf_counter()
    results = [run_fs(table, rule=ReductionRule.BDD, cache=cache,
                      counters=counters)
               for _, table in corpus]
    elapsed = time.perf_counter() - start
    return results, counters, elapsed


def test_cache_hit_rate_artifact(tmp_path):
    n, base_count = 7, 4
    corpus = _variant_corpus(n, base_count)

    reference = {label: run_fs(table, rule=ReductionRule.BDD)
                 for label, table in corpus}

    cache = ResultCache(directory=str(tmp_path / "cache"))
    cold_results, cold_counters, cold_seconds = _solve_all(corpus, cache)
    cold_stats = cache.stats.snapshot()

    # Cold pass: one miss per orbit, every variant a canonical hit.
    assert cold_stats["misses"] == base_count
    assert cold_stats["hits"] == len(corpus) - base_count

    warm_results, warm_counters, warm_seconds = _solve_all(corpus, cache)
    warm_stats = cache.stats.snapshot()
    assert warm_stats["misses"] == cold_stats["misses"]
    assert warm_stats["hits"] == cold_stats["hits"] + len(corpus)
    # A warm pass does no kernel work at all.
    assert warm_counters.table_cells == 0
    assert warm_counters.compactions == 0

    for (label, _), cold, warm in zip(corpus, cold_results, warm_results):
        assert cold.mincost == reference[label].mincost
        assert warm.mincost == reference[label].mincost
        assert warm.order == cold.order

    record = {
        "benchmark": "cache_hit_rate",
        "n": n,
        "corpus_size": len(corpus),
        "unique_functions": base_count,
        "cold": {
            "hits": cold_stats["hits"],
            "misses": cold_stats["misses"],
            "hit_rate": cold_stats["hits"] / len(corpus),
            "table_cells": cold_counters.table_cells,
            "seconds": cold_seconds,
        },
        "warm": {
            "hits": warm_stats["hits"] - cold_stats["hits"],
            "misses": 0,
            "hit_rate": 1.0,
            "table_cells": warm_counters.table_cells,
            "seconds": warm_seconds,
        },
    }
    out_path = pathlib.Path(__file__).parent / "BENCH_cache_hit_rate.json"
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2)
    with open(out_path) as handle:
        assert json.load(handle)["warm"]["table_cells"] == 0

    print_table(
        f"Result-cache hit rate (n={n}, {len(corpus)} tables, "
        f"{base_count} orbits)",
        ["pass", "hits", "misses", "hit rate", "table cells", "seconds"],
        [
            ("cold", record["cold"]["hits"], record["cold"]["misses"],
             f"{record['cold']['hit_rate']:.2f}",
             record["cold"]["table_cells"],
             f"{cold_seconds:.4f}"),
            ("warm", record["warm"]["hits"], 0, "1.00", 0,
             f"{warm_seconds:.4f}"),
        ],
    )
    print(f"warm pass avoids {cold_counters.table_cells} table cells "
          f"({cold_seconds / max(warm_seconds, 1e-9):.1f}x faster)")
