"""The exponential-size counting argument, with measurements.

Paper claim (related work): "there exists a function for which the OBDD
size grows exponentially in the number of variables under any variable
ordering", by a counting argument.  Measured: the certified hardness
threshold grows like ``2^n / 2n``; random functions' *optimal* sizes
concentrate against the per-level maximum profile (the empirical face of
"almost all functions are hard"); and known-easy families sit far below.
"""

import statistics

import pytest

from conftest import print_table

from repro.analysis.counting import (
    exponential_necessity_threshold,
    fraction_of_easy_functions_bound,
    max_obdd_nodes,
)
from repro.core import run_fs
from repro.functions import achilles_heel, parity
from repro.truth_table import TruthTable


def test_threshold_growth(benchmark):
    ns = [6, 10, 14, 18, 24, 32, 40]

    def sweep():
        return [
            (n, exponential_necessity_threshold(n), (1 << n) // (2 * n))
            for n in ns
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Certified hardness threshold (some function needs > s nodes "
        "under EVERY ordering)",
        ["n", "threshold s", "2^n / 2n"],
        rows,
    )
    ratios = [s / max(ref, 1) for _, s, ref in rows]
    # tracks the Shannon rate within a constant
    assert all(0.8 < r < 1.7 for r in ratios)
    # and is certainly exponential: doubles (at least) every 2 steps of n
    thresholds = [s for _, s, _ in rows]
    assert all(b > 2 * a for a, b in zip(thresholds, thresholds[2:]))


def test_random_functions_concentrate_at_maximum(benchmark):
    def sweep():
        rows = []
        for n in (4, 5, 6):
            sizes = [
                run_fs(TruthTable.random(n, seed=seed)).mincost
                for seed in range(30)
            ]
            ceiling = max_obdd_nodes(n, include_terminals=False)
            rows.append((
                n,
                f"{statistics.mean(sizes):.1f}",
                min(sizes),
                max(sizes),
                ceiling,
                f"{statistics.mean(sizes) / ceiling:.2f}",
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Optimal OBDD size of random functions vs the absolute ceiling",
        ["n", "mean optimum", "min", "max", "ceiling", "mean/ceiling"],
        rows,
    )
    # Concentration: the mean optimum stays within a constant factor of
    # the ceiling and the ratio does not collapse as n grows.
    fractions = [float(row[5]) for row in rows]
    assert all(f > 0.55 for f in fractions)


def test_easy_families_are_atypical(benchmark):
    def sweep():
        rows = []
        for name, table in (
            ("parity(8)", parity(8)),
            ("achilles(4)", achilles_heel(4)),
            ("random(8)", TruthTable.random(8, seed=1)),
        ):
            optimum = run_fs(table).mincost
            bound = fraction_of_easy_functions_bound(8, optimum)
            rows.append((name, optimum,
                         f"{bound:.2e}" if bound < 1 else ">= 1 (vacuous)"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "How atypical are the easy functions? (fraction bound at their size)",
        ["function", "optimal nodes", "fraction of functions this small"],
        rows,
    )
    # The structured families are in a vanishing minority; the random
    # function's size is large enough that the bound is uninformative.
    parity_bound = fraction_of_easy_functions_bound(
        8, run_fs(parity(8)).mincost
    )
    assert parity_bound < 1e-15
