"""Crash-recovery cost: what a SIGKILLed worker actually costs a sweep.

Three runs of the same FS solve on the process backend are compared: a
clean run on a warm pool (the baseline the robustness machinery must not
tax), a run whose worker is SIGKILLed mid-layer and healed by a pool
rebuild, and the serial reference that pins bit-identity.  Measured: the
wall-clock of each, the recovery overhead, and the healing gauges —
recorded to ``BENCH_crash_recovery.json`` next to this file (the CI
uploads it as an artifact).

The headline claim is the *no-fault* row: on a healthy run the
fault-tolerance path is pure bookkeeping — a ``[None] * chunks`` slot
list and one retry-policy frame per layer — so its gauges must read
exactly zero and its results must be bit-identical to the pre-robustness
serial baseline.  That zero is asserted, not eyeballed: gauge-zero plus
bit-identity is the honest form of "overhead unmeasurable", where a
wall-clock delta on a busy CI box would be noise."""

import json
import pathlib
import time

from conftest import print_table

from repro.core import ProcessBackend, run_fs
from repro.core.checkpoint import FaultInjector
from repro.truth_table import TruthTable

HEALING_GAUGES = (
    "pool_rebuilds",
    "chunks_retried",
    "tasks_shipped",
    "bytes_shipped",
)


def _paper_counters(counters):
    snap = counters.snapshot()
    for extra in HEALING_GAUGES:
        snap.pop(extra, None)
    return snap


def _timed_run(table, backend, fault_injector=None):
    start = time.perf_counter()
    result = run_fs(
        table, jobs=4, backend=backend, fault_injector=fault_injector
    )
    return result, time.perf_counter() - start


def test_crash_recovery_artifact():
    table = TruthTable.random(6, seed=2026)
    serial = run_fs(table, jobs=4, backend="serial")

    backend = ProcessBackend(jobs=4, max_pool_rebuilds=2)
    try:
        # Warm the pool so neither measured run pays spawn cost.
        _timed_run(table, backend)

        clean, clean_seconds = _timed_run(table, backend)

        injector = FaultInjector(
            kill_worker_layer=3,
            kill_worker_chunk=0,
            kill_worker_phase="during",
        )
        faulted, faulted_seconds = _timed_run(
            table, backend, fault_injector=injector
        )
    finally:
        backend.close()

    # Bit-identity: clean and crashed-and-healed runs both reproduce the
    # serial result exactly, healing/transport gauges aside.
    for run in (clean, faulted):
        assert run.order == serial.order
        assert run.mincost == serial.mincost
        assert _paper_counters(run.counters) == _paper_counters(
            serial.counters
        )

    clean_extras = dict(clean.counters.extra)
    faulted_extras = dict(faulted.counters.extra)

    # No-fault overhead: the self-healing path must cost a healthy run
    # nothing it can be billed for — zero rebuilds, zero retried chunks.
    assert clean_extras.get("pool_rebuilds", 0) == 0
    assert clean_extras.get("chunks_retried", 0) == 0

    # The faulted run really crashed and really healed.
    assert injector.worker_kills_injected == 1
    assert faulted_extras["pool_rebuilds"] == 1
    assert faulted_extras["chunks_retried"] >= 1

    recovery_overhead = faulted_seconds - clean_seconds
    record = {
        "n": table.n,
        "jobs": 4,
        "kill": {"layer": 3, "chunk": 0, "phase": "during"},
        "clean_seconds": clean_seconds,
        "faulted_seconds": faulted_seconds,
        "recovery_overhead_seconds": recovery_overhead,
        "clean_gauges": {
            "pool_rebuilds": clean_extras.get("pool_rebuilds", 0),
            "chunks_retried": clean_extras.get("chunks_retried", 0),
        },
        "faulted_gauges": {
            "pool_rebuilds": faulted_extras["pool_rebuilds"],
            "chunks_retried": faulted_extras["chunks_retried"],
        },
        "bit_identical_to_serial": True,
    }
    out_path = pathlib.Path(__file__).parent / "BENCH_crash_recovery.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")

    print_table(
        "crash recovery (process backend, jobs=4)",
        ["run", "seconds", "pool_rebuilds", "chunks_retried"],
        [
            ["clean", f"{clean_seconds:.3f}", 0, 0],
            [
                "worker SIGKILL",
                f"{faulted_seconds:.3f}",
                faulted_extras["pool_rebuilds"],
                faulted_extras["chunks_retried"],
            ],
            [
                "overhead",
                f"{recovery_overhead:+.3f}",
                "",
                "",
            ],
        ],
    )
