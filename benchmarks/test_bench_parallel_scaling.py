"""Parallel scaling of the layered sweep across execution backends.

Measured: wall-clock of ``run_fs`` over a ``backend x jobs`` grid
(serial/thread/process x 1/2/4) on an n=13 corpus table (n=14 joins the
grid on boxes with >= 4 cores), plus the process backend's transport
tallies — recorded to ``BENCH_parallel_scaling.json`` next to this file
(the CI uploads it as an artifact).

The shape assertions are about *correctness under parallelism*, which is
hardware-independent: every cell reproduces the serial jobs=1 result and
paper-facing counters bit-for-bit.  Speedup assertions are honest about
hardware: a >= 2x win for ``process jobs=4`` over ``jobs=1`` is only
asserted when ``os.cpu_count() >= 4`` — on a single-core box (like the
reference machine; see ``meta.cpu_count`` in the artifact) the process
backend's IPC overhead is the story, and the artifact records it rather
than pretending otherwise.
"""

import json
import os
import pathlib
import time

from conftest import print_table

from repro.analysis.counters import OperationCounters
from repro.core import ProcessBackend, run_fs
from repro.truth_table import TruthTable


GRID_JOBS = (1, 2, 4)
BACKENDS = ("serial", "thread", "process")


def paper_counters(counters):
    snap = counters.snapshot()
    snap.pop("tasks_shipped", None)
    snap.pop("bytes_shipped", None)
    return snap


def _run_cell(table, backend_name, jobs):
    """One grid cell: wall-clock + counters, pool spawn amortized out."""
    if backend_name == "process" and jobs > 1:
        backend = ProcessBackend(jobs=jobs)
        # Warm the pool so the cell times the sweep, not interpreter
        # spawn (a per-process one-off that BENCH_fs_profile would
        # otherwise double-count into every cell).
        run_fs(TruthTable.random(6, seed=6), backend=backend, jobs=jobs)
    else:
        backend = backend_name
    counters = OperationCounters()
    start = time.perf_counter()
    result = run_fs(table, counters=counters, backend=backend, jobs=jobs)
    wall = time.perf_counter() - start
    if isinstance(backend, ProcessBackend):
        backend.close()
    return result, counters, wall


def test_parallel_scaling_artifact():
    cpu_count = os.cpu_count() or 1
    sizes = [13] + ([14] if cpu_count >= 4 else [])

    records = []
    rows = []
    for n in sizes:
        table = TruthTable.random(n, seed=n)
        reference = None
        for backend_name in BACKENDS:
            for jobs in GRID_JOBS:
                result, counters, wall = _run_cell(table, backend_name, jobs)
                if reference is None:
                    reference = (result, paper_counters(counters))
                ref_result, ref_counters = reference
                # Bit-identical across every backend x jobs cell.
                assert result.mincost == ref_result.mincost
                assert result.order == ref_result.order
                assert paper_counters(counters) == ref_counters
                records.append({
                    "n": n,
                    "backend": backend_name,
                    "jobs": jobs,
                    "wall_seconds": wall,
                    "mincost": result.mincost,
                    "tasks_shipped": counters.extra.get("tasks_shipped", 0),
                    "bytes_shipped": counters.extra.get("bytes_shipped", 0),
                })
                rows.append((n, backend_name, jobs, f"{wall:.3f}",
                             records[-1]["tasks_shipped"],
                             records[-1]["bytes_shipped"]))

    by_cell = {(r["n"], r["backend"], r["jobs"]): r for r in records}
    if cpu_count >= 4:
        # ISSUE acceptance: process jobs=4 at least 2x faster than
        # jobs=1 on the n=14 corpus — only meaningful with real cores.
        solo = by_cell[(14, "process", 1)]["wall_seconds"]
        quad = by_cell[(14, "process", 4)]["wall_seconds"]
        assert quad * 2.0 <= solo, (
            f"process jobs=4 ({quad:.3f}s) not 2x faster than "
            f"jobs=1 ({solo:.3f}s) despite {cpu_count} cores")

    record = {
        "benchmark": "parallel_scaling",
        "meta": {
            "cpu_count": cpu_count,
            "sizes": sizes,
            "note": ("wall-clock is honest for this machine; speedup "
                     "assertions only run with >= 4 cores"),
        },
        "cells": records,
    }
    out_path = pathlib.Path(__file__).parent / "BENCH_parallel_scaling.json"
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    with open(out_path) as handle:
        assert json.load(handle)["cells"]

    print_table(
        f"Parallel scaling (cpu_count={cpu_count})",
        ["n", "backend", "jobs", "wall s", "tasks shipped", "bytes shipped"],
        rows,
    )
