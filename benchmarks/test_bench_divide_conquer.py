"""Lemma 9 / Theorems 10 & 13 structure: divide-and-conquer end to end.

Measured: (a) the Lemma 9 split identity at every division point;
(b) OptOBDD and the composed solvers return the certified optimum on real
inputs; (c) the minimum-finder ablation (classical scan vs simulated
quantum, exact vs sampled) — same answers, different accounting; and
(d) the sampled finder's empirical failure rate against Theorem 1's
"not minimum with exponentially small probability".
"""

import random

import pytest

from conftest import print_table

from repro.core import (
    mincost_by_split,
    opt_obdd,
    opt_obdd_composed,
    run_fs,
)
from repro.quantum import ClassicalMinimumFinder, QuantumMinimumFinder, QueryLedger
from repro.truth_table import TruthTable


def test_lemma9_identity_sweep(benchmark):
    n = 6
    table = TruthTable.random(n, seed=1)

    def sweep():
        reference = run_fs(table).mincost
        return reference, [
            (k, mincost_by_split(table, k).mincost) for k in range(n + 1)
        ]

    reference, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"Lemma 9 at every division point (n={n}; MINCOST_[n] = {reference})",
        ["k", "min over K of (MINCOST_K + rest)"],
        rows,
    )
    assert all(value == reference for _, value in rows)


def test_finder_ablation(benchmark):
    table = TruthTable.random(7, seed=2)

    def ablate():
        reference = run_fs(table).mincost
        classical = opt_obdd(table, finder=ClassicalMinimumFinder())
        ledger = QueryLedger()
        exact_quantum = opt_obdd(
            table,
            finder=QuantumMinimumFinder(ledger=ledger, epsilon=1e-6,
                                        rng=random.Random(0)),
        )
        sampled = opt_obdd(
            table,
            finder=QuantumMinimumFinder(epsilon=1e-3, mode="sampled",
                                        rng=random.Random(0)),
        )
        return reference, classical, exact_quantum, sampled, ledger

    reference, classical, exact_quantum, sampled, ledger = benchmark.pedantic(
        ablate, rounds=1, iterations=1
    )
    print_table(
        "Minimum-finder ablation (n=7)",
        ["finder", "mincost", "modeled queries"],
        [
            ("classical scan", classical.mincost, 0),
            ("quantum (exact mode)", exact_quantum.mincost, f"{ledger.total:.0f}"),
            ("quantum (sampled DH)", sampled.mincost, "dynamics-dependent"),
        ],
    )
    assert classical.mincost == reference
    assert exact_quantum.mincost == reference
    assert sampled.mincost >= reference  # valid; optimal w.h.p.


def test_composition_depth_sweep(benchmark):
    table = TruthTable.random(5, seed=3)

    def sweep():
        reference = run_fs(table).mincost
        rows = []
        for depth in (0, 1, 2):
            result = opt_obdd_composed(table, depth=depth)
            rows.append((depth, result.mincost,
                         result.counters.table_cells))
        return reference, rows

    reference, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Composed solver by depth (n=5): correctness + simulation cost",
        ["depth", "mincost", "table cells (classical sim cost)"],
        rows,
    )
    for _, mincost, _ in rows:
        assert mincost == reference
    # Classically, deeper composition costs MORE to simulate (the speedup
    # exists only in the quantum query model) — the honest shape.
    cells = [row[2] for row in rows]
    assert cells[2] >= cells[1]


def test_sampled_failure_rate(benchmark):
    table = TruthTable.random(5, seed=4)

    def trials():
        reference = run_fs(table).mincost
        failures = 0
        runs = 20
        for trial in range(runs):
            finder = QuantumMinimumFinder(epsilon=0.01, mode="sampled",
                                          rng=random.Random(trial))
            if opt_obdd(table, finder=finder).mincost != reference:
                failures += 1
        return failures, runs

    failures, runs = benchmark.pedantic(trials, rounds=1, iterations=1)
    print(f"\nsampled-DH OptOBDD failures: {failures}/{runs} @ eps=0.01/call")
    assert failures <= 2
