"""Variable ordering inside a verification run.

The motivation chain made concrete: during symbolic reachability the
frontier BDDs' sizes depend on the variable ordering, so a bad order
inflates every image step.  Measured: total/peak frontier sizes of the
mutual-exclusion protocol traversal under (a) the natural interleaved
current/next order, (b) a deliberately separated order, and (c) pairing
guided by the exact optimizer on the final reachable set.
"""

import pytest

from conftest import print_table

from repro.bdd.symbolic import TransitionSystem
from repro.core import run_fs

BITS = 5


def encode(w0, c0, w1, c1, turn):
    return w0 | (c0 << 1) | (w1 << 2) | (c1 << 3) | (turn << 4)


def successors(state):
    w0, c0 = state & 1, (state >> 1) & 1
    w1, c1 = (state >> 2) & 1, (state >> 3) & 1
    turn = (state >> 4) & 1
    out = []
    if not w0 and not c0:
        out.append(encode(1, 0, w1, c1, turn))
    if w0 and not c0 and not c1 and turn == 0:
        out.append(encode(0, 1, w1, c1, turn))
    if c0:
        out.append(encode(0, 0, w1, c1, 1))
    if not w1 and not c1:
        out.append(encode(w0, c0, 1, 0, turn))
    if w1 and not c1 and not c0 and turn == 1:
        out.append(encode(w0, c0, 0, 1, turn))
    if c1:
        out.append(encode(w0, c0, 0, 0, 0))
    return out


def interleaved_order():
    # current bit i adjacent to its next copy: 0, 5, 1, 6, ...
    order = []
    for i in range(BITS):
        order += [i, BITS + i]
    return order


def separated_order():
    # all current bits, then all next bits
    return list(range(2 * BITS))


def traverse(order):
    system = TransitionSystem.from_successor_function(BITS, successors,
                                                      order=order)
    result = system.reachable([encode(0, 0, 0, 0, 0)])
    relation_size = system.manager.size(system.relation)
    return result, relation_size


def test_ordering_matters_during_traversal(benchmark):
    def sweep():
        rows = []
        for name, order in (
            ("interleaved cur/next", interleaved_order()),
            ("separated cur | next", separated_order()),
        ):
            result, relation_size = traverse(order)
            rows.append((
                name,
                relation_size,
                max(result.frontier_sizes),
                sum(result.frontier_sizes),
                result.num_states,
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Mutual-exclusion protocol traversal by variable order",
        ["ordering", "relation BDD", "peak frontier", "total frontier",
         "reachable states"],
        rows,
    )
    # Same verification verdict regardless of order...
    assert rows[0][4] == rows[1][4] == 12
    # ...but the interleaved order keeps the relation BDD smaller (the
    # classic advice for transition relations).
    assert rows[0][1] <= rows[1][1]


def test_optimizer_certifies_reachable_set_order(benchmark):
    def run():
        system = TransitionSystem.from_successor_function(BITS, successors)
        table = system.reachable_set_table([encode(0, 0, 0, 0, 0)])
        from repro.truth_table import count_subfunctions

        natural = sum(count_subfunctions(table, list(range(BITS))))
        exact = run_fs(table)
        return natural, exact.mincost, exact.order

    natural, optimal, order = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Reachable-set function: natural vs certified-optimal ordering",
        ["ordering", "internal nodes"],
        [("natural", natural), (f"optimal {order}", optimal)],
    )
    assert optimal <= natural
