"""Remark 2 / ZDD appendix: minimum ZDDs and MTBDDs via the same DP.

Measured: (a) the two-line ZDD rule change yields exact minimum ZDDs
(validated against the independent ZDD manager and n!-brute force);
(b) ZDDs beat OBDDs on sparse families, increasingly so with sparsity
(Minato's motivation); (c) MTBDD minimization handles multi-valued
functions (the MTBDD generalization of Remark 2).
"""

import pytest

from conftest import print_table

from repro.bdd import ZDD
from repro.core import ReductionRule, brute_force_optimal, run_fs
from repro.functions import (
    family_truth_table,
    path_independent_sets,
    random_sparse,
    sparse_random_family,
)
from repro.truth_table import TruthTable


def test_zdd_exactness(benchmark):
    def sweep():
        rows = []
        for seed in range(5):
            table = TruthTable.random(5, seed=seed)
            fs = run_fs(table, rule=ReductionRule.ZDD)
            bf = brute_force_optimal(table, rule=ReductionRule.ZDD,
                                     collect_all=False)
            manager = ZDD(5, list(fs.order))
            managed = manager.size(manager.from_truth_table(table),
                                   include_terminals=False)
            rows.append((seed, fs.mincost, bf.mincost, managed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Minimum ZDD: FS-with-ZDD-rule vs brute force vs independent manager",
        ["seed", "FS-ZDD", "brute force", "ZDD manager at FS order"],
        rows,
    )
    for _, fs_cost, bf_cost, managed in rows:
        assert fs_cost == bf_cost == managed


def test_zdd_vs_bdd_on_sparse_functions(benchmark):
    densities = [1, 2, 4, 8, 16, 32]
    n = 6

    def sweep():
        rows = []
        for ones in densities:
            table = random_sparse(n, ones, seed=ones)
            zdd = run_fs(table, rule=ReductionRule.ZDD).mincost
            bdd = run_fs(table).mincost
            rows.append((ones, zdd, bdd))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"Sparse on-sets (n={n}): minimum ZDD vs minimum OBDD (internal nodes)",
        ["|on-set|", "min ZDD", "min OBDD", "ZDD/OBDD"],
        [(o, z, b, f"{z / b:.2f}") for o, z, b in rows],
    )
    # Shape: ZDDs win on the sparsest inputs, and their advantage shrinks
    # as density grows.
    sparse_ratio = rows[0][1] / rows[0][2]
    dense_ratio = rows[-1][1] / rows[-1][2]
    assert sparse_ratio < 1.0
    assert sparse_ratio < dense_ratio


def test_zdd_on_structured_families(benchmark):
    def sweep():
        rows = []
        family = path_independent_sets(6)
        table = family_truth_table(6, family)
        fs = run_fs(table, rule=ReductionRule.ZDD)
        rows.append(("path independent sets (n=6)", len(family), fs.mincost))
        random_family = sparse_random_family(6, len(family), seed=1)
        random_table = family_truth_table(6, random_family)
        random_fs = run_fs(random_table, rule=ReductionRule.ZDD)
        rows.append(("random family, same cardinality", len(random_family),
                     random_fs.mincost))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Structured vs random families: minimum ZDD size",
        ["family", "#sets", "min ZDD nodes"],
        rows,
    )
    # Structured (frontier-friendly) families compress far better than
    # random families of the same cardinality.
    assert rows[0][2] < rows[1][2]


def test_mtbdd_minimization(benchmark):
    def sweep():
        rows = []
        for values in (2, 3, 4, 6):
            table = TruthTable.random(4, seed=values, num_values=values)
            fs = run_fs(table, rule=ReductionRule.MTBDD)
            bf = brute_force_optimal(table, rule=ReductionRule.MTBDD,
                                     collect_all=False)
            assert fs.mincost == bf.mincost
            rows.append((values, fs.mincost, fs.num_terminals))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Minimum MTBDD (n=4) by terminal alphabet size",
        ["#values", "min internal nodes", "terminals"],
        rows,
    )
    # more terminal values -> less merging -> no smaller diagrams
    sizes = [r[1] for r in rows]
    assert sizes[0] <= sizes[-1]
