"""Shared-forest (multi-rooted) ordering: the multi-output extension.

The NP-hardness lineage the paper cites starts with multi-rooted OBDDs
[THY96]; this bench exercises our multi-rooted generalization of the FS
DP.  Measured: exact shared optima vs brute force; sharing factor
(shared forest vs sum of separately-optimized diagrams) on multi-output
circuits; and the cost of forcing one common order on unrelated outputs.
"""

import pytest

from conftest import print_table

from repro.bdd import BDD
from repro.core import run_fs, run_fs_shared
from repro.core.shared import brute_force_shared, build_forest
from repro.expr import compile_circuit
from repro.functions import adder_bit, c17
from repro.truth_table import TruthTable


def test_shared_exactness(benchmark):
    def sweep():
        rows = []
        for seed in range(4):
            tables = [TruthTable.random(4, seed=seed * 2 + j) for j in range(2)]
            fs = run_fs_shared(tables)
            _, bf = brute_force_shared(tables)
            rows.append((seed, fs.mincost, bf))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Shared optimum vs n!-brute force (2 outputs, n=4)",
        ["seed", "FS shared", "brute force"],
        rows,
    )
    for _, fs_cost, bf_cost in rows:
        assert fs_cost == bf_cost


def test_sharing_on_multi_output_circuits(benchmark):
    def sweep():
        rows = []
        # c17's two outputs
        manager = BDD(5)
        circuit = c17()
        t22 = manager.to_truth_table(compile_circuit(manager, circuit, "n22"))
        t23 = manager.to_truth_table(compile_circuit(manager, circuit, "n23"))
        shared = run_fs_shared([t22, t23]).mincost
        separate = run_fs(t22).mincost + run_fs(t23).mincost
        rows.append(("c17 (2 outputs)", shared, separate))
        # all four sum bits of a 3-bit adder
        adder_outputs = [adder_bit(3, k) for k in range(4)]
        shared = run_fs_shared(adder_outputs).mincost
        separate = sum(run_fs(t).mincost for t in adder_outputs)
        rows.append(("adder3 (4 outputs)", shared, separate))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Shared forest vs separately-optimized diagrams (internal nodes)",
        ["design", "shared optimum", "sum of separate optima"],
        [(n, s, sep) for n, s, sep in rows],
    )
    # Related outputs share: the shared forest beats or matches the sum.
    for _, shared, separate in rows:
        assert shared <= separate


def test_common_order_penalty(benchmark):
    # Unrelated outputs pull the ordering in different directions: the
    # shared optimum exceeds what each output could get alone.
    def sweep():
        from repro.functions import achilles_heel, conjunction_of_pairs

        f = achilles_heel(3)                                   # pairs (01)(23)(45)
        g = conjunction_of_pairs([(0, 3), (1, 4), (2, 5)], 6)  # pairs (03)(14)(25)
        shared = run_fs_shared([f, g])
        alone_f = run_fs(f).mincost
        alone_g = run_fs(g).mincost
        forest = build_forest([f, g], list(shared.order))
        return shared.mincost, alone_f, alone_g, forest.size

    shared, alone_f, alone_g, total = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    print_table(
        "Conflicting matchings: one shared order for two achilles variants",
        ["quantity", "internal nodes"],
        [
            ("each alone (optimal for itself)", f"{alone_f} / {alone_g}"),
            ("shared forest optimum", shared),
            ("forest total incl. terminals", total),
        ],
    )
    # The conflict costs something: shared > alone_f + alone_g would mean
    # zero sharing AND per-output penalties; at minimum it exceeds the
    # best single function's cost substantially.
    assert shared > max(alone_f, alone_g)
    assert shared >= alone_f + 1  # at least one output pays a penalty
