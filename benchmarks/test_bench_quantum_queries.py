"""Lemma 6 / Theorem 10: quantum query accounting.

Measured: (a) the Durr-Hoyer simulator's actual query counts scale like
sqrt(N) and its failure rate stays below the configured epsilon; (b) the
exact-mode ledger charges of a full OptOBDD run match the sqrt-binomial
model of the recurrence (5)-(7); (c) quantum-vs-classical evaluation
counts per minimum-finding call (the quadratic win the speedup rests on).
"""

import math
import random
import statistics

import pytest

from conftest import print_table

from repro.analysis.complexity import fit_growth_rate
from repro.core import opt_obdd, run_fs
from repro.quantum import (
    QuantumMinimumFinder,
    QueryLedger,
    durr_hoyer,
    lemma6_query_bound,
)
from repro.truth_table import TruthTable


def dh_sweep():
    sizes = [8, 16, 32, 64, 128, 256, 512]
    rows = []
    for size in sizes:
        rnd = random.Random(size)
        values = [rnd.randint(0, 10 * size) for _ in range(size)]
        queries = []
        failures = 0
        for trial in range(40):
            out = durr_hoyer(values, rng=random.Random(trial), epsilon=0.05)
            queries.append(out.queries)
            failures += not out.succeeded
        rows.append((size, statistics.mean(queries), failures / 40))
    return rows


def test_durr_hoyer_sqrt_scaling(benchmark):
    rows = benchmark.pedantic(dh_sweep, rounds=1, iterations=1)
    display = [
        (n, f"{mean:.1f}", f"{mean / math.sqrt(n):.2f}", f"{fail:.3f}")
        for n, mean, fail in rows
    ]
    print_table(
        "Durr-Hoyer simulation: mean queries vs sqrt(N), failure rate @ eps=0.05",
        ["N", "mean queries", "queries / sqrt(N)", "failure rate"],
        display,
    )
    ns = [row[0] for row in rows]
    means = [row[1] for row in rows]
    # log-log slope ~ 0.5 => base growth per doubling ~ sqrt(2)
    ratios = [b / a for a, b in zip(means, means[1:])]
    assert statistics.mean(ratios) == pytest.approx(math.sqrt(2), rel=0.3)
    for _, _, failure in rows:
        assert failure <= 0.05 + 0.05  # epsilon plus sampling slack


def test_lemma6_charge_matches_model(benchmark):
    def charges():
        out = []
        for exponent in range(3, 11):
            n = 1 << exponent
            ledger = QueryLedger()
            ledger.charge_minimum_finding(n, 1e-6)
            out.append((n, ledger.total))
        return out

    rows = benchmark.pedantic(charges, rounds=1, iterations=1)
    base, _ = fit_growth_rate(
        [math.log2(n) for n, _ in rows], [q for _, q in rows]
    )
    print_table(
        "Lemma 6 ledger: charge vs sqrt(N log 1/eps)",
        ["N", "charged", "model"],
        [(n, q, f"{lemma6_query_bound(n, 1e-6):.1f}") for n, q in rows],
    )
    # doubling N multiplies the charge by ~sqrt(2)
    assert base == pytest.approx(math.sqrt(2), rel=0.05)


def expected_opt_obdd_queries(n: int, epsilon: float) -> float:
    """Closed-form ledger total for the exact-mode OptOBDD recursion.

    Mirrors the recursion: at stage ``t`` the finder searches
    ``C(|L|, levels[t-1])`` candidates (one Lemma 6 charge), and each of
    those candidates plus the winner's recomputation recurses one stage
    down; stage 0 reads the preprocessed table without queries.
    """
    from repro.core import THEOREM10_ALPHAS, effective_levels

    levels = effective_levels(n, THEOREM10_ALPHAS)

    def total(t: int, size_l: int) -> float:
        if t == 0 or not levels:
            return 0.0
        candidates = math.comb(size_l, levels[t - 1])
        charge = math.ceil(math.sqrt(candidates * math.log(1.0 / epsilon)))
        return charge + (candidates + 1) * total(t - 1, levels[t - 1])

    return total(len(levels), n)


def test_opt_obdd_query_accounting(benchmark):
    ns = [5, 6, 7, 8, 9]
    epsilon = 1e-6

    def sweep():
        from repro.analysis.counters import OperationCounters

        rows = []
        for n in ns:
            table = TruthTable.random(n, seed=n)
            ledger = QueryLedger()
            counters = OperationCounters()
            finder = QuantumMinimumFinder(
                ledger=ledger, epsilon=epsilon, rng=random.Random(n),
                counters=counters,
            )
            result = opt_obdd(table, finder=finder, counters=counters)
            assert result.mincost == run_fs(table).mincost
            rows.append((n, ledger.total, expected_opt_obdd_queries(n, epsilon),
                         result.counters.classical_evaluations))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "OptOBDD (simulated quantum): ledger charges per n",
        ["n", "modeled queries", "closed-form model",
         "classical evals (sim overhead)"],
        rows,
    )
    for n, queries, model, evaluations in rows:
        # measured ledger equals the closed-form recursion exactly
        assert queries == model
    # At the small n a classical simulation can reach, the sqrt(log 1/eps)
    # constant still dominates (queries may exceed the classical scan);
    # the per-call quadratic advantage at realistic N is asserted in
    # test_quantum_vs_classical_eval_ratio below.


def test_statevector_grounds_closed_form(benchmark):
    # The deepest layer of the substitution: explicit unitary dynamics vs
    # the sin^2((2j+1) theta) closed form the DH simulator samples from.
    from repro.quantum import measured_success_probability, success_probability

    def grid():
        rows = []
        for num_items, num_marked in ((16, 1), (32, 3), (64, 1), (64, 8)):
            worst = 0.0
            for iterations in range(8):
                measured = measured_success_probability(
                    num_items, list(range(num_marked)), iterations
                )
                formula = success_probability(num_items, num_marked, iterations)
                worst = max(worst, abs(measured - formula))
            rows.append((num_items, num_marked, f"{worst:.2e}"))
        return rows

    rows = benchmark.pedantic(grid, rounds=1, iterations=1)
    print_table(
        "Statevector Grover vs closed form: max |deviation| over j=0..7",
        ["N", "marked", "max deviation"],
        rows,
    )
    for _, _, deviation in rows:
        assert float(deviation) < 1e-9


def test_quantum_vs_classical_eval_ratio(benchmark):
    # Per-call comparison at growing N: ledger charge / N -> 0 like
    # 1/sqrt(N), the quadratic speedup in its purest form.
    def ratios():
        out = []
        for exponent in (4, 6, 8, 10, 12):
            n = 1 << exponent
            charge = lemma6_query_bound(n, 1e-6)
            out.append((n, charge / n))
        return out

    rows = benchmark.pedantic(ratios, rounds=1, iterations=1)
    print_table(
        "Quantum advantage per minimum-finding call",
        ["N", "modeled queries / classical evals"],
        [(n, f"{r:.4f}") for n, r in rows],
    )
    values = [r for _, r in rows]
    assert values == sorted(values, reverse=True)
    assert values[-1] < values[0] / 10
