"""Degradation ladder: exactness given up vs. latency bought.

Measured: (a) abort latency — how far past its deadline a governed
``run_fs`` runs before surfacing :class:`BudgetExceeded` (the promise is
"within one layer boundary", so the overshoot is bounded by the last
layer's cost, not by the total sweep); (b) the exact-vs-fallback size
gap — how much ordering quality each ladder rung gives up when the exact
DP's share of the deadline is exhausted, against the wall-clock it
saves.  Recorded to ``BENCH_degradation.json`` next to this file (the CI
uploads it as an artifact alongside the other BENCH files).
"""

import json
import pathlib
import time

from conftest import print_table

from repro.analysis.counters import OperationCounters
from repro.core import Budget, optimize_with_fallback, run_fs
from repro.errors import BudgetExceeded
from repro.truth_table import TruthTable, obdd_size


def test_degradation_artifact(benchmark):
    # -- (a) abort latency: governed runs stop near, not at, the deadline
    abort_rows = []
    for n, deadline in [(12, 0.05), (13, 0.1), (14, 0.1)]:
        table = TruthTable.random(n, seed=n)
        counters = OperationCounters()
        started = time.perf_counter()
        try:
            run_fs(table, counters=counters, budget=Budget(deadline=deadline))
            raise AssertionError(f"n={n} finished inside {deadline}s")
        except BudgetExceeded as exc:
            elapsed = time.perf_counter() - started
            abort_rows.append({
                "n": n,
                "deadline_seconds": deadline,
                "elapsed_seconds": round(elapsed, 4),
                "overshoot_seconds": round(elapsed - deadline, 4),
                "layers_completed": exc.layers_completed,
            })
            assert counters.extra.get("budget_aborts") == 1
            # "within ~1 layer of the deadline": generous absolute bound,
            # far below the seconds a full n=14 sweep would take.
            assert elapsed < deadline + 2.0

    # -- (b) exact-vs-fallback gap under a deadline that forces the ladder
    gap_rows = []
    for n in (9, 10):
        table = TruthTable.random(n, seed=n)
        t0 = time.perf_counter()
        exact = run_fs(table)
        exact_seconds = time.perf_counter() - t0
        exact_size = exact.mincost + exact.num_terminals

        def degrade(table=table):
            return optimize_with_fallback(
                table, budget=Budget(deadline=0.02))

        fallback = benchmark.pedantic(degrade, rounds=1, iterations=1) \
            if n == 9 else degrade()
        t1 = time.perf_counter()
        governed_seconds = time.perf_counter() - t1 + sum(
            a.seconds for a in fallback.attempts)
        assert fallback.size == obdd_size(table, fallback.order)
        assert fallback.size >= exact_size  # exact is a true lower bound
        gap_rows.append({
            "n": n,
            "exact_size": exact_size,
            "exact_seconds": round(exact_seconds, 4),
            "fallback_size": fallback.size,
            "fallback_rung": fallback.rung,
            "fallback_exact": fallback.exact,
            "size_ratio": round(fallback.size / exact_size, 4),
            "ladder_seconds": round(
                sum(a.seconds for a in fallback.attempts), 4),
            "attempts": [
                {"rung": a.rung, "status": a.status,
                 "seconds": round(a.seconds, 4)}
                for a in fallback.attempts
            ],
        })

    record = {
        "benchmark": "degradation",
        "abort_latency": abort_rows,
        "exact_vs_fallback": gap_rows,
    }
    out_path = pathlib.Path(__file__).parent / "BENCH_degradation.json"
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2)
    with open(out_path) as handle:
        assert json.load(handle)["benchmark"] == "degradation"

    print_table(
        "Abort latency (deadline -> BudgetExceeded)",
        ["n", "deadline s", "elapsed s", "overshoot s", "layers done"],
        [(r["n"], r["deadline_seconds"], r["elapsed_seconds"],
          r["overshoot_seconds"], r["layers_completed"])
         for r in abort_rows],
    )
    print_table(
        "Exact vs fallback (deadline 0.02s)",
        ["n", "exact", "exact s", "fallback", "rung", "ratio"],
        [(r["n"], r["exact_size"], f"{r['exact_seconds']:.3f}",
          r["fallback_size"], r["fallback_rung"], f"{r['size_ratio']:.2f}")
         for r in gap_rows],
    )
