"""Figure 1: the exponential ordering gap of the achilles-heel function.

Paper claim: ``f = x1 x2 + x3 x4 + ... + x_{2n-1} x_{2n}`` has a
``(2n+2)``-node OBDD under the pairs-adjacent ordering and a
``2^{n+1}``-node OBDD under the odds-then-evens ordering; for n = 3 the
level profiles are [1,1,1,1,1,1] and [1,2,4,4,2,1] (the two diagrams
drawn in the figure).  FS must recover the good ordering as optimal.
"""

import pytest

from conftest import print_table

from repro.core import build_diagram, run_fs
from repro.functions import (
    achilles_bad_order,
    achilles_bad_size,
    achilles_good_order,
    achilles_good_size,
    achilles_heel,
)
from repro.truth_table import obdd_size

PAIRS_SWEEP = list(range(1, 8))


def regenerate_series():
    rows = []
    for pairs in PAIRS_SWEEP:
        table = achilles_heel(pairs)
        good = obdd_size(table, achilles_good_order(pairs))
        bad = obdd_size(table, achilles_bad_order(pairs))
        optimal = run_fs(table).size
        rows.append((pairs, 2 * pairs, good, achilles_good_size(pairs),
                     bad, achilles_bad_size(pairs), optimal))
    return rows


def test_figure1_series(benchmark):
    rows = benchmark.pedantic(regenerate_series, rounds=1, iterations=1)
    print_table(
        "Figure 1: ordering gap for x1x2 + x3x4 + ... (sizes incl. terminals)",
        ["pairs", "vars", "good", "paper 2n+2", "bad", "paper 2^(n+1)", "FS optimum"],
        rows,
    )
    for pairs, _, good, paper_good, bad, paper_bad, optimal in rows:
        assert good == paper_good
        assert bad == paper_bad
        assert optimal == paper_good  # the good ordering is globally optimal
    # the gap is exponential: bad/good = 2^(p+1)/(2p+2) grows without bound
    ratios = [bad / good for _, _, good, _, bad, _, _ in rows]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > 10 * ratios[0]


def test_figure1_level_profiles(benchmark):
    table = achilles_heel(3)

    def profiles():
        left = build_diagram(table, achilles_good_order(3))
        right = build_diagram(table, achilles_bad_order(3))
        return left.level_widths(), right.level_widths()

    left, right = benchmark.pedantic(profiles, rounds=1, iterations=1)
    print_table(
        "Figure 1 (n=6): level profiles",
        ["ordering", "widths (root to bottom)"],
        [("x1 x2 x3 x4 x5 x6", left), ("x1 x3 x5 x2 x4 x6", right)],
    )
    assert left == [1, 1, 1, 1, 1, 1]
    assert right == [1, 2, 4, 4, 2, 1]
