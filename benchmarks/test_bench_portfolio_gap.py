"""Optimality gap of every registered portfolio strategy vs the exact DP.

Measured: for each function family (n <= 10) the exact FS optimum and the
total size each registered heuristic strategy reaches, reported as a
quality ratio (strategy size / optimum, 1.00 = optimal).  The portfolio's
pitch is that racing diverse inexact strategies keeps the *best* member
close to the certified optimum even where individual members wander —
gated here at within 15% per family.

Artifacts: BENCH_portfolio_gap.json next to this file (uploaded by CI).
"""

import json
import pathlib

from conftest import print_table

from repro.core import run_fs
from repro.functions import (
    achilles_heel,
    comparator,
    hidden_weighted_bit,
    multiplexer,
    random_dnf_function,
)
from repro.portfolio import available_strategies, run_strategy
from repro.truth_table import TruthTable

FUNCTIONS = [
    ("achilles(4)", lambda: achilles_heel(4)),
    ("achilles(5)", lambda: achilles_heel(5)),
    ("comparator(3)", lambda: comparator(3)),
    ("multiplexer(2)", lambda: multiplexer(2)),
    ("hwb(6)", lambda: hidden_weighted_bit(6)),
    ("random-dnf(7)", lambda: random_dnf_function(7, 5, 3, seed=7)),
    ("random(7)", lambda: TruthTable.random(7, seed=7)),
]

GATE_RATIO = 1.15  # best inexact member must land within 15% of optimal


def run_gap_sweep():
    strategies = available_strategies()
    rows = []
    for name, make in FUNCTIONS:
        table = make()
        optimum = run_fs(table).size
        members = {}
        for strategy in strategies:
            result = run_strategy(strategy, table, seed=3)
            members[strategy] = {
                "size": result.size,
                "ratio": result.size / optimum,
                "evaluations": result.evaluations,
                "status": result.status,
            }
        rows.append({
            "function": name,
            "n": table.n,
            "optimum": optimum,
            "strategies": members,
            "best_ratio": min(m["ratio"] for m in members.values()),
            "best_strategy": min(members,
                                 key=lambda s: (members[s]["ratio"], s)),
        })
    return rows


def test_portfolio_gap(benchmark):
    rows = benchmark.pedantic(run_gap_sweep, rounds=1, iterations=1)
    strategies = available_strategies()

    display = [
        (
            row["function"],
            row["optimum"],
            *(f"{row['strategies'][s]['ratio']:.2f}x" for s in strategies),
            f"{row['best_ratio']:.2f}x ({row['best_strategy']})",
        )
        for row in rows
    ]
    print_table(
        "Portfolio members vs exact optimum (ratio; 1.00x = optimal)",
        ["function", "optimal", *strategies, "best"],
        display,
    )

    for row in rows:
        for strategy, member in row["strategies"].items():
            # Nobody beats (or miscounts past) the certified optimum.
            assert member["size"] >= row["optimum"], (row["function"],
                                                      strategy)
        # The gate: racing the registered pool keeps the best member
        # within 15% of optimal on every n <= 10 family here.
        assert row["best_ratio"] <= GATE_RATIO, (row["function"],
                                                 row["best_ratio"])

    record = {
        "benchmark": "portfolio_gap",
        "gate_ratio": GATE_RATIO,
        "strategies": list(strategies),
        "families": rows,
    }
    out_path = pathlib.Path(__file__).parent / "BENCH_portfolio_gap.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")

    reloaded = json.loads(out_path.read_text())
    assert reloaded["benchmark"] == "portfolio_gap"
    assert len(reloaded["families"]) == len(FUNCTIONS)
