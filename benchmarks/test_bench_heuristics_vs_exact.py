"""Intro motivation: heuristics have no optimality guarantee; FS does.

Measured: solution quality (size vs exact optimum) and search effort
(orderings evaluated) of sifting, window permutation, random restarts and
the greedy construction, across structured and random functions.  The
paper's point — heuristics can be arbitrarily far off while the exact DP
certifies the optimum — shows up as quality gaps > 1.0 on adversarial
inputs and as the cheap heuristics' tiny evaluation budgets.
"""

import pytest

from conftest import print_table

from repro.bdd import greedy_append, random_restart_search, sift, window_permute
from repro.core import run_fs
from repro.functions import (
    achilles_bad_order,
    achilles_heel,
    comparator,
    hidden_weighted_bit,
    multiplexer,
    random_dnf_function,
)
from repro.truth_table import TruthTable

FUNCTIONS = [
    ("achilles(4)", lambda: achilles_heel(4)),
    ("comparator(3)", lambda: comparator(3)),
    ("multiplexer(2)", lambda: multiplexer(2)),
    ("hwb(6)", lambda: hidden_weighted_bit(6)),
    ("random-dnf(7)", lambda: random_dnf_function(7, 5, 3, seed=7)),
    ("random(7)", lambda: TruthTable.random(7, seed=7)),
]


def run_sweep():
    from dataclasses import dataclass

    from repro.analysis import influence_order
    from repro.truth_table import obdd_size

    @dataclass
    class Fixed:
        size: int

    rows = []
    for name, make in FUNCTIONS:
        table = make()
        exact = run_fs(table)
        entries = {
            "sift": sift(table, initial_order=list(range(table.n))),
            "window3": window_permute(table, window=3),
            "random30": random_restart_search(table, tries=30, seed=1),
            "greedy": greedy_append(table),
            "influence": Fixed(obdd_size(table, influence_order(table))),
        }
        rows.append((name, exact.size, entries))
    return rows


def test_heuristic_quality_gap(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    display = []
    for name, optimum, entries in rows:
        display.append((
            name,
            optimum,
            *(f"{entries[k].size} ({entries[k].size / optimum:.2f}x)"
              for k in ("sift", "window3", "random30", "greedy", "influence")),
        ))
    print_table(
        "Heuristics vs exact optimum (total size; parenthesis = quality ratio)",
        ["function", "optimal", "sift", "window3", "random30", "greedy",
         "influence"],
        display,
    )
    for name, optimum, entries in rows:
        for result in entries.values():
            assert result.size >= optimum  # nobody beats the certified optimum
    # Aggregate shape: sifting's mean quality ratio is the best of the
    # heuristics (per-instance it can lose to a lucky random draw).
    def mean_ratio(key):
        return sum(e[key].size / opt for _, opt, e in rows) / len(rows)

    assert mean_ratio("sift") <= mean_ratio("random30") + 0.05
    assert mean_ratio("sift") < 1.35  # sifting stays near-optimal overall


def test_heuristics_can_miss_the_optimum(benchmark):
    # Adversarial shape: an achilles-heel instance whose matching is NOT
    # the natural variable order, so a tiny random budget almost surely
    # misses it while FS is exact — the "no worst-case guarantee" point.
    from repro.functions import conjunction_of_pairs

    table = conjunction_of_pairs([(0, 4), (1, 5), (2, 3)], 6)

    def attempt():
        exact = run_fs(table)
        misses = 0
        seeds = range(10)
        for seed in seeds:
            weak = random_restart_search(table, tries=3, seed=seed)
            misses += weak.size > exact.size
        return misses, len(seeds), exact.size

    misses, runs, exact_size = benchmark.pedantic(attempt, rounds=1, iterations=1)
    print(f"\nweak heuristic missed the optimum ({exact_size}) in "
          f"{misses}/{runs} runs")
    assert misses >= runs // 2  # most tiny-budget runs are suboptimal


def test_search_effort_comparison(benchmark):
    table = TruthTable.random(6, seed=6)

    def sweep():
        exact = run_fs(table)
        return {
            "FS subsets": exact.counters.subsets_processed,
            "sift evals": sift(table).evaluations,
            "window3 evals": window_permute(table, window=3).evaluations,
            "greedy evals": greedy_append(table).evaluations,
        }

    effort = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Search effort (n=6)",
        ["method", "work units"],
        list(effort.items()),
    )
    # Heuristics examine polynomially many orderings; FS touches all 2^n
    # subsets (the price of the guarantee).
    assert effort["FS subsets"] == 2 ** 6 - 1
    assert effort["sift evals"] < 2 ** 6 * 6


def test_sift_convergence_trajectory(benchmark):
    table = achilles_heel(4)
    result = benchmark.pedantic(
        lambda: sift(table, initial_order=achilles_bad_order(4)),
        rounds=1, iterations=1,
    )
    print(f"\nsift trajectory from the bad ordering: {result.trajectory}")
    assert result.trajectory[0] > result.trajectory[-1]
    assert result.trajectory[-1] == run_fs(table).size


def test_ordering_sensitivity_ranking(benchmark):
    # The paper's opening claim, quantified per family: how much the
    # ordering matters (worst/best over all orderings).
    from repro.analysis.sensitivity import ordering_sensitivity
    from repro.functions import adder_bit, parity, threshold

    cases = [
        ("parity(6)", parity(6)),
        ("threshold(6,3)", threshold(6, 3)),
        ("achilles(3)", achilles_heel(3)),
        ("adder3 sum2", adder_bit(3, 2)),
        ("random(6)", TruthTable.random(6, seed=66)),
    ]

    def sweep():
        rows = []
        for name, table in cases:
            report = ordering_sensitivity(table)
            rows.append((
                name,
                report.minimum,
                report.maximum,
                f"{report.spread:.2f}x",
                f"{report.regret_of_average:.2f}x",
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ordering sensitivity (exhaustive over all orderings, n=6)",
        ["function", "best", "worst", "worst/best", "mean/best"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    # Symmetric functions are insensitive; structured arithmetic is the
    # sensitive regime the paper motivates with.
    assert by_name["parity(6)"][3] == "1.00x"
    assert by_name["threshold(6,3)"][3] == "1.00x"
    assert float(by_name["achilles(3)"][3].rstrip("x")) > 2.0
    assert float(by_name["adder3 sum2"][3].rstrip("x")) > 1.5
