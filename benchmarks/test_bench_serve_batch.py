"""Batch-over-the-wire economics: ``solve_many`` vs N single ``solve``
calls, and per-shard locking vs one directory-wide lock.

Two claims priced here.  First, a manifest submitted as one
``solve_many`` request beats the same problems pipelined as N singles:
one request line, one response, fingerprint dedup *before* the queue.
Second, the sharded disk store removes lock contention between
concurrent writers: the same two-thread write storm is timed against a
16-shard directory and a 1-shard directory (the old single-lock layout,
degenerately), comparing accumulated ``FileLock`` wait time.  Recorded
to ``BENCH_serve_batch.json`` next to this file (the CI uploads it as
an artifact alongside the other ``BENCH_*.json`` files).
"""

import json
import pathlib
import threading
import time

from conftest import print_table

from repro.core.cache import ResultCache
from repro.serve import ServeClient, ServeConfig, running_server
from repro.truth_table import TruthTable


def _values_payload(table):
    return {
        "values": "".join(str(int(v)) for v in table.values),
        "n": table.n,
    }


def _corpus():
    distinct = [TruthTable.random(8, seed=500 + i) for i in range(6)]
    # Each function appears three times: once raw, once permuted, once
    # complemented — the dedup-before-queue case batch traffic is full of.
    perm = [3, 1, 7, 0, 6, 2, 5, 4]
    batch = []
    for table in distinct:
        batch.append(table)
        batch.append(table.permute(perm))
        batch.append(TruthTable(8, [1 - v for v in table.values]))
    return distinct, batch


def _bench_wire():
    distinct, batch = _corpus()
    items = [_values_payload(table) for table in batch]
    config = ServeConfig(
        backend="thread", jobs=2, max_inflight=2, queue_limit=64
    )

    with running_server(config) as server:
        with ServeClient(server.address, timeout=600) as client:
            start = time.perf_counter()
            responses = [
                client.request({"op": "solve", "method": "fs", **item})
                for item in items
            ]
            singles_seconds = time.perf_counter() - start
            singles_metrics = client.metrics()["server"]

    with running_server(config) as server:
        with ServeClient(server.address, timeout=600) as client:
            start = time.perf_counter()
            batched = client.solve_many(items, method="fs")
            batch_seconds = time.perf_counter() - start
            batch_metrics = client.metrics()["server"]

    # Same answers either way, and the batch never sweeps more than the
    # singles run did (dedup happens before the queue, not after).
    assert batched["summary"]["error"] == 0
    for single, body in zip(responses, batched["results"]):
        assert body["result"]["mincost"] == single["result"]["mincost"]
        assert body["result"]["order"] == single["result"]["order"]
    assert (
        batch_metrics["kernel_sweeps"] <= singles_metrics["kernel_sweeps"]
    )
    assert batch_metrics["kernel_sweeps"] == len(distinct)

    return {
        "requests": len(items),
        "distinct_functions": len(distinct),
        "singles": {
            "seconds": round(singles_seconds, 6),
            "requests_per_second": round(len(items) / singles_seconds, 3),
            "kernel_sweeps": singles_metrics["kernel_sweeps"],
        },
        "batch": {
            "seconds": round(batch_seconds, 6),
            "requests_per_second": round(len(items) / batch_seconds, 3),
            "kernel_sweeps": batch_metrics["kernel_sweeps"],
            "deduped": batch_metrics["batch_deduped"],
        },
        "batch_over_singles_speedup": round(
            singles_seconds / batch_seconds, 3
        ),
    }


def _write_storm(directory, shards, writers=2, entries=48):
    """Concurrent writers over one directory; returns (seconds,
    accumulated lock-wait seconds, lock waits)."""
    cache = ResultCache(
        directory=str(directory), shards=shards, max_disk_entries=32
    )

    def write(base):
        for i in range(entries):
            # Spread fingerprints over the full prefix space so shard
            # collisions between threads are the exception, not the rule.
            prefix = (base * 31 + i * 7) % 256
            fingerprint = f"{prefix:02x}" + f"{base}{i:03d}" * 12 + "00"
            cache.store(fingerprint, {"base": base, "i": i})

    threads = [
        threading.Thread(target=write, args=(base,))
        for base in range(writers)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return elapsed, cache.stats.lock_wait_seconds, cache.stats.lock_waits


def test_serve_batch_artifact(tmp_path):
    wire = _bench_wire()

    sharded_seconds, sharded_wait, sharded_waits = _write_storm(
        tmp_path / "sharded", shards=16
    )
    single_seconds, single_wait, single_waits = _write_storm(
        tmp_path / "single", shards=1
    )

    print_table(
        "solve_many vs N singles (18 requests, 6 distinct functions)",
        ["mode", "seconds", "req/sec", "kernel sweeps"],
        [
            ("N singles", f"{wire['singles']['seconds']:.3f}",
             f"{wire['singles']['requests_per_second']:.1f}",
             wire["singles"]["kernel_sweeps"]),
            ("one solve_many", f"{wire['batch']['seconds']:.3f}",
             f"{wire['batch']['requests_per_second']:.1f}",
             wire["batch"]["kernel_sweeps"]),
        ],
    )
    print(f"batch/singles speedup: "
          f"{wire['batch_over_singles_speedup']:.2f}x")
    print_table(
        "disk-store write storm (2 writers x 48 entries, cap 32)",
        ["layout", "seconds", "lock waits", "lock wait s"],
        [
            ("16 shards", f"{sharded_seconds:.3f}", sharded_waits,
             f"{sharded_wait:.4f}"),
            ("1 shard (single lock)", f"{single_seconds:.3f}",
             single_waits, f"{single_wait:.4f}"),
        ],
    )

    record = {
        "benchmark": "serve_batch",
        "wire": wire,
        "shard_lock_storm": {
            "writers": 2,
            "entries_per_writer": 48,
            "max_disk_entries": 32,
            "sharded_16": {
                "seconds": round(sharded_seconds, 6),
                "lock_waits": sharded_waits,
                "lock_wait_seconds": round(sharded_wait, 6),
            },
            "single_lock": {
                "seconds": round(single_seconds, 6),
                "lock_waits": single_waits,
                "lock_wait_seconds": round(single_wait, 6),
            },
        },
    }
    out_path = pathlib.Path(__file__).parent / "BENCH_serve_batch.json"
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
