"""Checkpoint round-trip: crash-safety overhead and resume speedup.

Measured: per-layer checkpoint write/load wall-clock (the engine's
``checkpoint_write``/``checkpoint_load`` profiler phases), checkpoint
file sizes, the overhead a checkpointed run pays over a plain one, and
the bit-identity of a kill-after-every-layer/resume cycle — recorded to
``BENCH_checkpoint_roundtrip.json`` next to this file (the CI uploads it
as an artifact alongside ``BENCH_fs_profile.json``).
"""

import json
import pathlib

from conftest import print_table

from repro.analysis.complexity import fs_table_cells
from repro.analysis.counters import OperationCounters
from repro.core import FaultInjector, InjectedFault, run_fs
from repro.observability import Profiler
from repro.truth_table import TruthTable


def test_checkpoint_roundtrip_artifact(benchmark, tmp_path):
    n = 8
    table = TruthTable.random(n, seed=n)

    clean = run_fs(table, counters=OperationCounters())
    assert clean.counters.table_cells == fs_table_cells(n)

    ckpt = tmp_path / "ckpt"
    write_profiler = Profiler()
    checkpointed = benchmark.pedantic(
        lambda: run_fs(table, counters=OperationCounters(),
                       profiler=write_profiler,
                       checkpoint_dir=str(ckpt)),
        rounds=1, iterations=1,
    )
    assert checkpointed.order == clean.order
    assert checkpointed.counters == clean.counters

    files = sorted(ckpt.glob("ckpt_*_layer_*.json"))
    assert len(files) == n
    total_bytes = sum(path.stat().st_size for path in files)

    # Kill after every layer k, resume; each cycle must reproduce the
    # clean run bit-for-bit (results and counters).
    resume_rows = []
    for k in range(1, n + 1):
        crash_dir = tmp_path / f"k{k}"
        try:
            run_fs(table, counters=OperationCounters(),
                   checkpoint_dir=str(crash_dir),
                   fault_injector=FaultInjector(kill_after_layer=k))
            raise AssertionError("injected fault did not fire")
        except InjectedFault:
            pass
        load_profiler = Profiler()
        resumed = run_fs(table, counters=OperationCounters(),
                         profiler=load_profiler,
                         checkpoint_dir=str(crash_dir), resume=True)
        assert resumed.order == clean.order
        assert resumed.mincost == clean.mincost
        assert resumed.counters == clean.counters
        resume_rows.append({
            "killed_after_layer": k,
            "checkpoint_load_seconds": load_profiler.phases.get(
                "checkpoint_load", 0.0),
            "layers_recomputed": len(load_profiler.layers),
        })
        assert resume_rows[-1]["layers_recomputed"] == n - k

    record = {
        "benchmark": "checkpoint_roundtrip",
        "n": n,
        "checkpoint_files": len(files),
        "checkpoint_bytes_total": total_bytes,
        "checkpoint_write_seconds": write_profiler.phases[
            "checkpoint_write"],
        "sweep_seconds_checkpointed": write_profiler.total_layer_seconds,
        "table_cells": clean.counters.table_cells,
        "resume_cycles": resume_rows,
    }
    out_path = pathlib.Path(__file__).parent / "BENCH_checkpoint_roundtrip.json"
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2)
    with open(out_path) as handle:
        assert json.load(handle)["checkpoint_files"] == n

    print_table(
        f"Checkpoint round-trip (n={n}, numpy kernel)",
        ["killed after k", "load s", "layers recomputed"],
        [
            (row["killed_after_layer"],
             f"{row['checkpoint_load_seconds']:.4f}",
             row["layers_recomputed"])
            for row in resume_rows
        ],
    )
    print(f"checkpoint bytes total: {total_bytes} across {len(files)} layers; "
          f"write phase {record['checkpoint_write_seconds']:.4f}s")
