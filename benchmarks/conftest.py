"""Shared helpers for the benchmark harness.

Every benchmark prints a paper-vs-measured table (run with ``-s`` to see
them; EXPERIMENTS.md records a reference run) and asserts the *shape* of
the paper's claim — who wins, by what growth rate, where the crossover
falls — rather than wall-clock numbers.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
