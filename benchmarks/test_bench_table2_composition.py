"""Table 2 (Appendix C) / Theorem 13: the composition fixed point.

Paper claim: feeding each OptOBDD's exponent base back in as the
subroutine base for the next composition level contracts
3 -> 2.83728 -> 2.79364 -> ... -> 2.77286 in ten steps, giving the
headline O*(2.77286^n) of Theorem 13.
"""

import pytest

from conftest import print_table

from repro.analysis.parameters import solve_table2, theorem13_constant

PAPER_TABLE2 = [
    (3.0, 2.83728),
    (2.83728, 2.79364),
    (2.79364, 2.77981),
    (2.77981, 2.77521),
    (2.77521, 2.77366),
    (2.77366, 2.77313),
    (2.77313, 2.77295),
    (2.77295, 2.77289),
    (2.77289, 2.77287),
    (2.77287, 2.77286),
]


def test_table2_rederivation(benchmark):
    rows = benchmark(solve_table2, 10)
    display = [
        (
            i + 1,
            f"{row.gamma_subroutine:.5f}",
            f"{row.base:.5f}",
            f"{paper_beta:.5f}",
            f"{row.alphas[0]:.6f}",
            f"{row.alphas[-1]:.6f}",
        )
        for i, (row, (_, paper_beta)) in enumerate(zip(rows, PAPER_TABLE2))
    ]
    print_table(
        "Table 2: composition iteration gamma -> beta_6 (measured vs paper)",
        ["iter", "gamma in", "beta (ours)", "beta (paper)", "alpha_1", "alpha_6"],
        display,
    )
    for row, (paper_gamma, paper_beta) in zip(rows, PAPER_TABLE2):
        assert row.gamma_subroutine == pytest.approx(paper_gamma, abs=5e-6)
        assert row.base == pytest.approx(paper_beta, abs=5e-6)
    # contraction: consecutive improvements shrink monotonically
    improvements = [
        row.gamma_subroutine - row.base for row in rows
    ]
    assert all(b < a for a, b in zip(improvements, improvements[1:]))


def test_theorem13_constant(benchmark):
    constant = benchmark(theorem13_constant, 10)
    print(f"\nTheorem 13 constant: {constant:.6f} (paper: <= 2.77286)")
    assert constant <= 2.77286 + 5e-6
