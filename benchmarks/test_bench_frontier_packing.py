"""Frontier packing: peak retained-layer bytes, dict vs packed store.

The FS dynamic program's memory wall is the retained frontier — at the
waist it holds ``C(n, n/2)`` states of ``2^{n/2}`` table cells each, the
very cells the paper's ``3^n`` analysis counts.  The packed store keeps
those cells bit-packed at ``bit_length(layer max)`` bits instead of one
``int64`` plus interpreter overhead per state, with bit-identical
results and counters.  Measured here: peak frontier bytes (the figure
the budget's ``max_frontier_bytes`` cap meters) and sweep wall-clock for
both stores over an ``n`` sweep — recorded to
``BENCH_frontier_packing.json`` next to this file (the CI uploads it as
an artifact).  The memory-regression gate: packed must stay under half
the dict figure at ``n = 12`` (the recorded runs land around 7x).
"""

import json
import pathlib
import time

from conftest import print_table

from repro.analysis.counters import OperationCounters
from repro.core import run_fs
from repro.observability import Profiler
from repro.truth_table import TruthTable


def test_frontier_packing_artifact(benchmark):
    sizes = (8, 10, 12)
    rows = []
    for n in sizes:
        table = TruthTable.random(n, seed=n)
        cells = {}
        for store in ("dict", "packed"):
            profiler = Profiler()
            counters = OperationCounters()
            start = time.perf_counter()
            result = run_fs(table, frontier_store=store,
                            counters=counters, profiler=profiler)
            elapsed = time.perf_counter() - start
            cells[store] = {
                "peak_frontier_bytes": profiler.peak_frontier_bytes,
                "sweep_seconds": elapsed,
                "mincost": result.mincost,
                "order": list(result.order),
                "counters": counters.snapshot(),
            }
        # Bit-identity first: packing must not change what the DP computes.
        assert cells["packed"]["mincost"] == cells["dict"]["mincost"]
        assert cells["packed"]["order"] == cells["dict"]["order"]
        assert cells["packed"]["counters"] == cells["dict"]["counters"]
        ratio = (cells["dict"]["peak_frontier_bytes"]
                 / cells["packed"]["peak_frontier_bytes"])
        rows.append({
            "n": n,
            "dict_peak_frontier_bytes": cells["dict"]["peak_frontier_bytes"],
            "packed_peak_frontier_bytes": cells["packed"][
                "peak_frontier_bytes"],
            "frontier_bytes_ratio": ratio,
            "dict_sweep_seconds": cells["dict"]["sweep_seconds"],
            "packed_sweep_seconds": cells["packed"]["sweep_seconds"],
        })

    # The memory-regression gate at the largest size: the packed store
    # must cut the budget-metered peak at least in half (recorded runs
    # land around 7x; the gate is deliberately slack so noise in the
    # id-width of a random instance cannot flake CI).
    top = rows[-1]
    assert top["n"] == 12
    assert (top["packed_peak_frontier_bytes"] * 2
            <= top["dict_peak_frontier_bytes"])

    record = {
        "benchmark": "frontier_packing",
        "stores": ["dict", "packed"],
        "dict_bytes_are_estimates": True,
        "packed_bytes_are_exact": True,
        "rows": rows,
    }
    out_path = pathlib.Path(__file__).parent / "BENCH_frontier_packing.json"
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2)
    with open(out_path) as handle:
        assert json.load(handle)["rows"][-1]["frontier_bytes_ratio"] >= 2

    benchmark.pedantic(
        lambda: run_fs(TruthTable.random(10, seed=10),
                       frontier_store="packed"),
        rounds=1, iterations=1,
    )

    print_table(
        "Frontier packing (numpy kernel, FULL policy)",
        ["n", "dict peak B", "packed peak B", "ratio", "dict s", "packed s"],
        [
            (row["n"], row["dict_peak_frontier_bytes"],
             row["packed_peak_frontier_bytes"],
             f"{row['frontier_bytes_ratio']:.2f}x",
             f"{row['dict_sweep_seconds']:.3f}",
             f"{row['packed_sweep_seconds']:.3f}")
            for row in rows
        ],
    )
