"""Ablations across the exact-algorithm family (DESIGN.md design choices).

Measured: (a) A* search over the FS lattice — states expanded vs the
``2^n - 1`` the plain DP always touches, across structured and random
inputs; (b) exact window optimization vs permutation-window enumeration —
same local optima, different work; (c) swap-based in-place sifting vs
evaluation-level sifting — same search neighbourhood on a live node graph.
"""

import itertools
import math

import pytest

from conftest import print_table

from repro.bdd import ReorderingBDD, sift as eval_sift
from repro.core import exact_window, run_fs, window_sweep
from repro.core.astar import astar_optimal_ordering
from repro.functions import (
    achilles_bad_order,
    achilles_heel,
    comparator,
    multiplexer,
    parity,
)
from repro.truth_table import TruthTable, count_subfunctions, obdd_size


def test_astar_vs_fs_states(benchmark):
    cases = [
        ("achilles(4)", achilles_heel(4)),
        ("multiplexer(2)", multiplexer(2)),
        ("comparator(3)", comparator(3)),
        ("parity(8)", parity(8)),
        ("random(8)", TruthTable.random(8, seed=8)),
    ]

    def sweep():
        rows = []
        for name, table in cases:
            fs = run_fs(table)
            astar = astar_optimal_ordering(table)
            assert astar.mincost == fs.mincost
            rows.append((
                name,
                table.n,
                astar.states_expanded,
                (1 << table.n) - 1,
                astar.mincost,
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "A* vs FS: subset states expanded (identical optima)",
        ["function", "n", "A* expanded", "FS expands (2^n - 1)", "mincost"],
        rows,
    )
    # Structured inputs prune; symmetric/random ones approach the DP.
    by_name = {name: expanded for name, _, expanded, _, _ in rows}
    assert by_name["achilles(4)"] < (1 << 8) - 1
    assert by_name["multiplexer(2)"] < (1 << 6) - 1
    assert by_name["parity(8)"] == (1 << 8)  # flat landscape: no pruning


def test_window_ablation(benchmark):
    table = TruthTable.random(7, seed=7)
    initial = list(range(7))
    width = 4

    def ablate():
        exact = window_sweep(table, initial_order=initial, width=width)
        # permutation-window enumeration at the same width, same schedule
        order = list(initial)
        size = sum(count_subfunctions(table, order))
        arrangements = 0
        for _ in range(10):
            improved = False
            for start in range(len(order) - width + 1):
                best_perm = tuple(order[start:start + width])
                for perm in itertools.permutations(order[start:start + width]):
                    arrangements += 1
                    candidate = order[:start] + list(perm) + order[start + width:]
                    s = sum(count_subfunctions(table, candidate))
                    if s < size:
                        size = s
                        best_perm = perm
                        improved = True
                order = order[:start] + list(best_perm) + order[start + width:]
            if not improved:
                break
        return exact, size, arrangements

    exact, enum_size, arrangements = benchmark.pedantic(
        ablate, rounds=1, iterations=1
    )
    print_table(
        f"Exact window (FS*) vs permutation enumeration (width {width}, n=7)",
        ["method", "final size", "work"],
        [
            ("FS* window sweep", exact.size,
             f"{exact.counters.table_cells} table cells, "
             f"{exact.windows_solved} windows"),
            ("w! enumeration", enum_size, f"{arrangements} arrangements"),
        ],
    )
    # Same local optimum by construction; FS* does 3^w work per window
    # instead of w! * full-chain evaluations.
    assert exact.size == enum_size
    optimum = run_fs(table).mincost
    assert exact.size >= optimum


def test_inplace_sift_vs_eval_sift(benchmark):
    table = achilles_heel(4)
    bad = achilles_bad_order(4)

    def ablate():
        manager = ReorderingBDD(8, list(bad))
        root = manager.from_truth_table(table)
        order_inplace, size_inplace = manager.sift()
        assert manager.to_truth_table(root) == table
        result_eval = eval_sift(table, initial_order=list(bad))
        return (size_inplace, tuple(order_inplace),
                result_eval.size, result_eval.order)

    size_inplace, order_inplace, size_eval, order_eval = benchmark.pedantic(
        ablate, rounds=1, iterations=1
    )
    print_table(
        "Sifting ablation on achilles(4) from the bad ordering",
        ["variant", "final size", "final order"],
        [
            ("in-place (level swaps)", size_inplace, order_inplace),
            ("evaluation-level", size_eval, order_eval),
        ],
    )
    assert size_inplace == obdd_size(table, list(order_inplace))
    assert size_inplace == size_eval == 10  # both reach the optimum (2n+2)


def test_symmetric_closed_form_vs_dp(benchmark):
    from repro.analysis import symmetric_obdd_size, value_vector

    def sweep():
        rows = []
        for n in (4, 6, 8, 10):
            table = parity(n)
            closed = symmetric_obdd_size(n, value_vector(table),
                                         include_terminals=False)
            dp = run_fs(table).mincost
            rows.append((f"parity({n})", closed, dp))
        from repro.functions import threshold

        for n, k in ((6, 3), (8, 4)):
            table = threshold(n, k)
            closed = symmetric_obdd_size(n, value_vector(table),
                                         include_terminals=False)
            dp = run_fs(table).mincost
            rows.append((f"threshold({n},{k})", closed, dp))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Symmetric closed form (O(n^2)) vs exact DP (O*(3^n))",
        ["function", "closed form", "FS optimum"],
        rows,
    )
    for _, closed, dp in rows:
        assert closed == dp


def test_complement_edge_ablation(benchmark):
    # Representation ablation: plain two-terminal OBDDs (what FS counts)
    # vs the complement-edge form every production package uses.
    from repro.bdd import cbdd_size
    from repro.functions import hidden_weighted_bit, majority

    cases = [
        ("parity(8)", parity(8)),
        ("majority(7)", majority(7)),
        ("hwb(7)", hidden_weighted_bit(7)),
        ("achilles(4)", achilles_heel(4)),
        ("random(8)", TruthTable.random(8, seed=88)),
    ]

    def sweep():
        rows = []
        for name, table in cases:
            order = list(range(table.n))
            plain = obdd_size(table, order, include_terminals=False)
            complemented = cbdd_size(table, order, include_terminals=False)
            rows.append((name, plain, complemented,
                         f"{complemented / plain:.2f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Complement edges vs plain OBDD (internal nodes, natural order)",
        ["function", "plain", "complement edges", "ratio"],
        rows,
    )
    for name, plain, complemented, _ in rows:
        assert complemented <= plain, name
    # parity is the extreme case: n vs 2n - 1
    assert rows[0][2] == 8 and rows[0][1] == 15


def test_symmetry_pruned_search(benchmark):
    # Symmetry classes collapse the n! search space by prod(|class|!).
    from repro.analysis.symmetry import (
        brute_force_up_to_symmetry,
        search_space_reduction,
    )
    from repro.functions import majority, threshold

    cases = [
        ("achilles(3)", achilles_heel(3)),
        ("majority(5)", majority(5)),
        ("threshold(6,2)", threshold(6, 2)),
        ("random(5)", TruthTable.random(5, seed=55)),
    ]

    def sweep():
        rows = []
        for name, table in cases:
            full, reduced = search_space_reduction(table)
            _, cost, evaluated = brute_force_up_to_symmetry(table)
            assert cost == run_fs(table).mincost
            rows.append((name, full, reduced, evaluated))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Symmetry-pruned exhaustive search (same optima as FS)",
        ["function", "n! orderings", "orbit representatives", "evaluated"],
        rows,
    )
    by_name = {name: (full, reduced) for name, full, reduced, _ in rows}
    assert by_name["majority(5)"][1] == 1       # totally symmetric
    assert by_name["achilles(3)"][1] == 90       # 720 / 2^3
    for name, full, reduced, evaluated in rows:
        assert evaluated == reduced <= full


def test_precedence_constraint_shrinkage(benchmark):
    # Precedence constraints shrink the feasible lattice — and can cost
    # diagram size when they fight the function's structure.
    from repro.core import run_fs_constrained

    table = TruthTable.random(8, seed=80)

    def sweep():
        rows = []
        for name, precedence in (
            ("none", []),
            ("one chain of 3", [(0, 1), (1, 2)]),
            ("star from x0", [(0, v) for v in range(1, 8)]),
            ("total order", [(v, v + 1) for v in range(7)]),
        ):
            result = run_fs_constrained(table, precedence)
            rows.append((name, result.feasible_subsets, result.mincost))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Precedence constraints: feasible subsets and constrained optima (n=8)",
        ["constraints", "feasible subsets (of 255)", "optimum"],
        rows,
    )
    subsets = [r[1] for r in rows]
    optima = [r[2] for r in rows]
    assert subsets[0] == 255 and subsets[-1] == 8
    # every constrained lattice is a strict sub-lattice of the free one
    # (different constraint sets are incomparable among themselves)
    assert all(count < 255 for count in subsets[1:])
    # constraints can never improve the optimum
    assert all(o >= optima[0] for o in optima)
