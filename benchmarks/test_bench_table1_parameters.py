"""Table 1 (Appendix C): gamma_k and optimal alphas of OptOBDD(k, alpha).

Paper claim: solving the system (8)-(9) with the classical FS* subroutine
(base 3) yields gamma_1..gamma_6 = 2.97625, 2.85690, 2.83925, 2.83744,
2.83729, 2.83728 with the printed alpha vectors.  We re-derive every row
from the equations alone (no paper constants enter the solver).
"""

import pytest

from conftest import print_table

from repro.analysis.parameters import solve_table1

PAPER_TABLE1 = {
    1: (2.97625, (0.274862,)),
    2: (2.85690, (0.192754, 0.334571)),
    3: (2.83925, (0.184664, 0.205128, 0.342677)),
    4: (2.83744, (0.183859, 0.186017, 0.206375, 0.343503)),
    5: (2.83729, (0.183795, 0.183967, 0.186125, 0.206474, 0.343569)),
    6: (2.83728, (0.183791, 0.183802, 0.183974, 0.186131, 0.206480, 0.343573)),
}


def test_table1_rederivation(benchmark):
    rows = benchmark(solve_table1, 6)
    display = []
    for row in rows:
        paper_gamma, paper_alphas = PAPER_TABLE1[row.k]
        display.append((
            row.k,
            f"{row.base:.5f}",
            f"{paper_gamma:.5f}",
            " ".join(f"{a:.6f}" for a in row.alphas),
            " ".join(f"{a:.6f}" for a in paper_alphas),
        ))
    print_table(
        "Table 1: gamma_k and alpha vectors (measured vs paper)",
        ["k", "gamma (ours)", "gamma (paper)", "alphas (ours)", "alphas (paper)"],
        display,
    )
    for row in rows:
        paper_gamma, paper_alphas = PAPER_TABLE1[row.k]
        # 2e-5 absolute on gamma (the paper's k=2 entry is off by one in
        # its last printed digit; see tests/test_analysis_parameters.py).
        assert row.base == pytest.approx(paper_gamma, abs=2e-5)
        for ours, theirs in zip(row.alphas, paper_alphas):
            assert ours == pytest.approx(theirs, abs=2e-6)
    # headline: quantum divide-and-conquer beats classical 3^n
    assert rows[-1].base < 3.0
