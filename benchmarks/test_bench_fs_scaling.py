"""Theorem 5: FS runs in O*(3^n); the trivial bound is O*(n! 2^n).

Measured: exact table-cell counts of the instrumented FS run per n,
fitted growth base (should be ~3 within the polynomial envelope), the
closed-form model, and the brute-force comparison with its crossover.
Also the engine ablation (vectorized numpy kernel vs the per-cell Python
transcription) from DESIGN.md's design-choices list, and the profiled
wall-clock/memory trajectory of the execution engine, recorded to
``BENCH_fs_profile.json`` next to this file.
"""

import json
import math
import pathlib

import pytest

from conftest import print_table

from repro.analysis.complexity import (
    brute_force_cells,
    fit_growth_rate,
    fs_table_cells,
    theorem5_bound,
    trivial_bound,
)
from repro.core import brute_force_optimal, run_fs
from repro.observability import Profiler
from repro.truth_table import TruthTable

SWEEP_NS = [4, 5, 6, 7, 8, 9, 10]


def measure_fs_cells():
    measured = []
    for n in SWEEP_NS:
        result = run_fs(TruthTable.random(n, seed=n))
        measured.append(result.counters.table_cells)
    return measured


def test_fs_scaling_matches_3n(benchmark):
    measured = benchmark.pedantic(measure_fs_cells, rounds=1, iterations=1)
    # Divide out the known linear factor before fitting (the O* convention):
    # cells = n * 3^(n-1), so cells/n must fit base 3 exactly.
    base, _ = fit_growth_rate(SWEEP_NS, [c / n for n, c in zip(SWEEP_NS, measured)])
    rows = [
        (n, cells, fs_table_cells(n), f"{cells / theorem5_bound(n):.3f}")
        for n, cells in zip(SWEEP_NS, measured)
    ]
    print_table(
        "Theorem 5: FS table cells vs 3^n (ratio = cells / 3^n)",
        ["n", "measured cells", "model n*3^(n-1)", "cells / 3^n"],
        rows,
    )
    print(f"fitted growth base: {base:.4f} (paper: 3)")
    for n, cells in zip(SWEEP_NS, measured):
        assert cells == fs_table_cells(n)  # exact match to the model
        assert cells <= n * theorem5_bound(n)  # inside the O* envelope
    assert 2.95 < base < 3.05


def test_fs_vs_bruteforce_crossover(benchmark):
    ns = [2, 3, 4, 5, 6]

    def sweep():
        rows = []
        for n in ns:
            table = TruthTable.random(n, seed=100 + n)
            fs = run_fs(table)
            bf = brute_force_optimal(table, collect_all=False)
            assert fs.mincost == bf.mincost
            rows.append((n, fs.counters.table_cells, bf.counters.table_cells))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    display = [
        (n, fs_cells, bf_cells, f"{bf_cells / fs_cells:.2f}x")
        for n, fs_cells, bf_cells in rows
    ]
    print_table(
        "FS vs brute force: measured cells (same answers)",
        ["n", "FS cells", "brute-force cells", "BF/FS"],
        display,
    )
    # Paper shape: n! 2^n dwarfs 3^n — brute force loses from n=4 on and
    # the gap widens monotonically.
    gaps = [bf / fs for _, fs, bf in rows]
    assert all(b > a for a, b in zip(gaps, gaps[1:]))
    assert rows[-1][2] > 10 * rows[-1][1]
    # sanity: the measured counts match the closed-form models
    for n, fs_cells, bf_cells in rows:
        assert fs_cells == fs_table_cells(n)
        assert bf_cells == brute_force_cells(n)


def test_engine_ablation_numpy(benchmark):
    table = TruthTable.random(8, seed=8)
    result = benchmark(lambda: run_fs(table, engine="numpy"))
    assert result.mincost == run_fs(table, engine="python").mincost


def test_engine_ablation_python(benchmark):
    # The per-cell executable specification: identical answers, far slower
    # (the DESIGN.md table-representation ablation).  Kept at n=8 so the
    # suite stays fast; compare mean times in the benchmark table.
    table = TruthTable.random(8, seed=8)
    result = benchmark.pedantic(
        lambda: run_fs(table, engine="python"), rounds=1, iterations=1
    )
    assert result.mincost == run_fs(table, engine="numpy").mincost


def test_fs_wallclock_n10(benchmark):
    table = TruthTable.random(10, seed=10)
    result = benchmark.pedantic(lambda: run_fs(table), rounds=1, iterations=1)
    assert result.counters.table_cells == fs_table_cells(10)


def test_fs_profile_trajectory(benchmark):
    """Record the engine's per-layer wall-clock/memory trajectory.

    Emits ``BENCH_fs_profile.json`` (gitignored; EXPERIMENTS.md records a
    reference run) so regressions in layer wall-clock or peak frontier
    bytes are visible run over run, alongside the usual counter laws.
    """
    n = 10
    table = TruthTable.random(n, seed=n)
    profiler = Profiler()
    result = benchmark.pedantic(
        lambda: run_fs(table, profiler=profiler), rounds=1, iterations=1
    )
    assert result.counters.table_cells == fs_table_cells(n)
    assert [layer.k for layer in profiler.layers] == list(range(1, n + 1))
    assert [layer.subsets for layer in profiler.layers] == [
        math.comb(n, k) for k in range(1, n + 1)
    ]
    # The frontier waist sits at k = n/2 (C(n,k) states of 2^(n-k) cells).
    peaks = [layer.frontier_bytes for layer in profiler.layers]
    assert profiler.peak_frontier_bytes == max(peaks)

    out_path = pathlib.Path(__file__).parent / "BENCH_fs_profile.json"
    profiler.meta["benchmark"] = "fs_profile_trajectory"
    profiler.write(str(out_path))
    with open(out_path) as handle:
        recorded = json.load(handle)
    assert recorded["layers"][-1]["counters"]["table_cells"] == fs_table_cells(n)

    print_table(
        "Execution-engine trajectory (n=10, numpy kernel)",
        ["k", "subsets", "wall s", "frontier bytes"],
        [
            (layer.k, layer.subsets, f"{layer.wall_seconds:.4f}",
             layer.frontier_bytes)
            for layer in profiler.layers
        ],
    )
    print(f"peak frontier bytes: {profiler.peak_frontier_bytes}")
